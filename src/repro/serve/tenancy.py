"""Multi-tenant model pool: byte-bounded LRU of per-tenant forecasters.

The multi-tenant scenario is "one checkpoint per tenant, shared graph":
every tenant trains its own parameters (a city district, a fleet, an A/B
arm) over the *same* sensor network, so the expensive derived spatial state
— diffusion supports, CSR transposes, fused stacks — must be built once and
shared, not once per tenant.  :class:`ModelPool` enforces that by loading
every tenant checkpoint against one shared :class:`~repro.graph.sensor_network.SensorNetwork`
(hence one :class:`repro.graph.Graph`); the
``support_cache_stats()["graph_support_builds"]`` counter stays flat as
tenants are added, which the tests pin.

Residency is byte-bounded: each loaded forecaster is measured
(:func:`forecaster_nbytes` — parameters + optimizer slots + replay buffer)
and least-recently-used tenants are evicted once the total exceeds
``max_bytes``.  Evicted tenants reload transparently from their registered
checkpoint path on the next request (a cold start, surfaced in
:meth:`stats`).
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..exceptions import ConfigurationError
from .forecaster import Forecaster

__all__ = [
    "forecaster_nbytes",
    "PoolEntry",
    "ModelPool",
    "CircuitBreaker",
    "TokenBucket",
    "historical_average",
]


def forecaster_nbytes(forecaster) -> int:
    """Resident bytes of one serving forecaster.

    Counts model parameters, optimizer slot variables and the replay-buffer
    contents — the per-tenant state.  The graph and its supports are shared
    across tenants and deliberately not attributed to any one of them.
    """
    total = sum(
        np.asarray(value).nbytes for value in forecaster.model.state_dict().values()
    )
    optimizer = forecaster._optimizer
    if optimizer is not None:
        for value in optimizer.state_dict().values():
            if isinstance(value, list):
                total += sum(np.asarray(slot).nbytes for slot in value)
    buffer = getattr(forecaster.model, "buffer", None)
    if buffer is not None and len(buffer):
        inputs, targets = buffer.as_arrays()
        total += inputs.nbytes + targets.nbytes
    return int(total)


def historical_average(
    stacked: np.ndarray, out_shape: tuple, target_channel: int = 0
) -> np.ndarray:
    """Model-free fallback forecast: per-node historical average.

    ``stacked`` is a ``(batch, time, nodes, channels)`` request stack;
    the forecast repeats each node's NaN-robust mean of the target channel
    over every output step.  ``out_shape`` is the per-window prediction
    shape the model would have produced (``(horizon, nodes, 1)``), so the
    degraded answer is drop-in shaped for callers.  This is the paper's HA
    baseline reduced to a single window — always available, never NaN.
    """
    values = np.asarray(stacked, dtype=float)[..., target_channel]  # (batch, time, nodes)
    finite = np.isfinite(values)
    sums = np.where(finite, values, 0.0).sum(axis=1)
    counts = finite.sum(axis=1)
    means = sums / np.maximum(counts, 1)
    means = np.where(counts > 0, means, 0.0)  # a fully-dark node forecasts 0
    batch = values.shape[0]
    return np.broadcast_to(
        means[:, None, :, None], (batch,) + tuple(out_shape)
    ).copy()


class TokenBucket:
    """Per-tenant admission control: ``rate`` tokens/second, ``burst`` cap.

    ``try_acquire`` refills lazily from a monotonic clock and either takes
    a token or reports rejection — no background thread, O(1) per call,
    thread-safe.  The engine keeps one bucket per tenant when
    ``EngineConfig.tenant_rate_limit`` is set.
    """

    def __init__(self, rate: float, burst: float | None = None):
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(2.0 * rate, 1.0)
        if self.burst < 1.0:
            raise ConfigurationError(f"burst must be >= 1, got {self.burst}")
        self._tokens = self.burst
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        with self._lock:
            now = time.monotonic()
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False


class CircuitBreaker:
    """Per-tenant circuit breaker: fail fast instead of hammering a sick model.

    Classic three-state machine.  *Closed*: traffic flows; consecutive
    failures (exceptions or non-finite outputs) count up and trip it open
    at ``failure_threshold``.  *Open*: :meth:`allow` refuses everything
    (the engine fails fast with :class:`~repro.exceptions.CircuitOpen` or
    routes to a fallback) until ``reset_timeout_s`` passes.  *Half-open*:
    up to ``half_open_probes`` requests are let through; if they all
    succeed the breaker closes, a single failure re-opens it.

    Thread-safe; one fused micro-batch counts as one success/failure
    event, so a tenant flooding the engine cannot trip its breaker faster
    by batching less.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, failure_threshold: int = 5, reset_timeout_s: float = 5.0,
                 half_open_probes: int = 1):
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ConfigurationError(
                f"reset_timeout_s must be positive, got {reset_timeout_s}"
            )
        if half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.half_open_probes = int(half_open_probes)
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_out = 0
        self._probe_successes = 0
        self.opened_total = 0

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open(time.monotonic())
            return self._state

    @property
    def failures(self) -> int:
        with self._lock:
            return self._failures

    def retry_after_s(self) -> float:
        """Seconds until an open breaker half-opens (0 when not open)."""
        with self._lock:
            if self._state != self.OPEN:
                return 0.0
            return max(self._opened_at + self.reset_timeout_s - time.monotonic(), 0.0)

    def _maybe_half_open(self, now: float) -> None:
        if self._state == self.OPEN and now >= self._opened_at + self.reset_timeout_s:
            self._state = self.HALF_OPEN
            self._probes_out = 0
            self._probe_successes = 0

    def allow(self) -> bool:
        """May a request proceed right now?  (Half-open admits probes.)"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            self._maybe_half_open(time.monotonic())
            if self._state == self.OPEN:
                return False
            if self._probes_out < self.half_open_probes:
                self._probes_out += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._state = self.CLOSED
                    self._failures = 0
            else:
                self._failures = 0

    def record_failure(self) -> bool:
        """Count one failure; returns True when this one tripped it open."""
        with self._lock:
            now = time.monotonic()
            if self._state == self.HALF_OPEN:
                # A failed probe re-opens immediately.
                self._state = self.OPEN
                self._opened_at = now
                self.opened_total += 1
                return True
            self._failures += 1
            if self._state == self.CLOSED and self._failures >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = now
                self.opened_total += 1
                return True
            return False

    def snapshot(self) -> dict:
        with self._lock:
            self._maybe_half_open(time.monotonic())
            return {
                "state": self._state,
                "failures": self._failures,
                "opened_total": self.opened_total,
            }


class _ReadWriteLock:
    """Writer-preferring readers/writer lock for one tenant's model.

    Any number of predict workers share the read side; the serialized
    update lane takes the write side, so an in-flight predict never
    observes half-stepped parameters (the optimizer steps in place).
    A waiting writer blocks *new* readers, which keeps a continuous
    predict stream from starving online updates.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    class _Side:
        __slots__ = ("_acquire", "_release")

        def __init__(self, acquire, release):
            self._acquire = acquire
            self._release = release

        def __enter__(self):
            self._acquire()
            return self

        def __exit__(self, *exc):
            self._release()

    def read(self) -> "_ReadWriteLock._Side":
        return self._Side(self.acquire_read, self.release_read)

    def write(self) -> "_ReadWriteLock._Side":
        return self._Side(self.acquire_write, self.release_write)


class PoolEntry:
    """One resident tenant: forecaster, serving view, lock, byte size."""

    __slots__ = ("tenant", "forecaster", "served", "lock", "nbytes", "dirty", "pins")

    def __init__(self, tenant: str, forecaster: Forecaster, served=None):
        self.tenant = tenant
        self.forecaster = forecaster
        self.served = served if served is not None else forecaster
        self.lock = _ReadWriteLock()
        self.nbytes = forecaster_nbytes(forecaster)
        # Online updates mutate in-memory state the checkpoint on disk does
        # not have; a dirty entry is pinned against eviction (reloading it
        # would silently discard accepted learning).
        self.dirty = False
        # In-flight writers: while > 0 the entry is pinned regardless of
        # dirtiness, so an eviction racing a write can never orphan the
        # update mid-step (the write would land on an object the pool no
        # longer serves and be silently discarded on reload).
        self.pins = 0

    def refresh_nbytes(self) -> int:
        """Re-measure after an online update (the replay buffer grows)."""
        self.nbytes = forecaster_nbytes(self.forecaster)
        return self.nbytes

    def mark_dirty(self) -> None:
        """Record un-persisted in-memory state (pins against eviction)."""
        self.dirty = True


class ModelPool:
    """Byte-bounded LRU pool of :class:`Forecaster` instances by tenant id.

    Parameters
    ----------
    max_bytes:
        Resident-state bound; ``None`` disables eviction.  Only tenants
        that can be reloaded (registered checkpoint path) and carry no
        un-persisted online updates are evictable; the most recently used
        tenant always stays, so a single tenant larger than the bound
        still serves (the bound then acts on everyone else).
    network:
        The shared sensor network.  Defaults to the first loaded tenant's;
        every later checkpoint must match it (same adjacency bytes) and is
        rebuilt *against* it, so all tenants share one ``Graph`` and its
        cached supports.
    decorate:
        Optional ``forecaster -> serving view`` hook applied on activation
        (the engine wraps tenants in :class:`~repro.serve.sharding.ShardedForecaster`
        through this).
    """

    def __init__(self, max_bytes: int | None = None, network=None, decorate=None,
                 load_hook=None):
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigurationError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self._network = network
        self._decorate = decorate
        # Called as ``load_hook(tenant, path)`` before every checkpoint
        # load; raising aborts the load.  The fault injector plugs in here.
        self._load_hook = load_hook
        self._paths: dict[str, Path] = {}
        self._entries: "OrderedDict[str, PoolEntry]" = OrderedDict()
        self._fallbacks: dict[str, Forecaster] = {}
        self._lock = threading.RLock()
        # Per-tenant guards so one cold checkpoint load neither blocks the
        # whole pool nor runs twice for concurrent misses on one tenant.
        self._loading: dict[str, threading.Lock] = {}
        self.loads = 0
        self.hits = 0
        self.evictions = 0
        self.load_failures = 0

    # ------------------------------------------------------------------ #
    @property
    def network(self):
        """The shared sensor network (``None`` until the first tenant)."""
        return self._network

    @property
    def graph(self):
        """The one shared :class:`repro.graph.Graph` (``None`` until loaded)."""
        return None if self._network is None else self._network.graph

    @property
    def tenants(self) -> list[str]:
        """Every known tenant id (resident or registered)."""
        with self._lock:
            known = dict.fromkeys(self._entries)
            known.update(dict.fromkeys(self._paths))
            return list(known)

    @property
    def resident(self) -> list[str]:
        """Tenant ids currently loaded, LRU-first."""
        with self._lock:
            return list(self._entries)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return sum(entry.nbytes for entry in self._entries.values())

    # ------------------------------------------------------------------ #
    def register(self, tenant: str, path: "str | Path") -> None:
        """Associate ``tenant`` with a checkpoint path (loaded lazily)."""
        with self._lock:
            self._paths[str(tenant)] = Path(path)

    def put(self, tenant: str, forecaster: Forecaster) -> PoolEntry:
        """Insert an already-built forecaster for ``tenant``.

        The forecaster must serve on the pool's shared network (same object
        or, for the first tenant, it *becomes* the shared network).
        """
        tenant = str(tenant)
        with self._lock:
            if self._network is None:
                self._network = forecaster.network
            elif forecaster.network is not self._network:
                raise ConfigurationError(
                    f"tenant {tenant!r} was built on its own network; construct it "
                    "against pool.network (or register its checkpoint path and let "
                    "the pool load it) so all tenants share one graph"
                )
            entry = self._activate(tenant, forecaster)
            return entry

    def get(self, tenant: str) -> PoolEntry:
        """The resident entry for ``tenant``, loading its checkpoint on miss.

        A miss runs the checkpoint load (disk IO + model rebuild) *outside*
        the pool-wide lock, so a cold tenant never stalls the hot path of
        resident ones; a per-tenant guard dedupes concurrent misses.  Only
        the very first load ever — the one that establishes the shared
        network — stays under the pool lock.
        """
        tenant = str(tenant)
        with self._lock:
            entry = self._entries.get(tenant)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(tenant)
                return entry
            path = self._paths.get(tenant)
            if path is None:
                raise ConfigurationError(f"unknown tenant {tenant!r}")
            shared = self._network
            if shared is None:
                # Startup path: this load defines the shared graph, and a
                # racing first load must not define a second one.
                forecaster = self._load(tenant, path, None)
                self.loads += 1
                self._network = forecaster.network
                return self._activate(tenant, forecaster)
            guard = self._loading.setdefault(tenant, threading.Lock())
        with guard:
            with self._lock:
                entry = self._entries.get(tenant)
                if entry is not None:
                    # A racer finished the load while we waited on the guard.
                    self.hits += 1
                    self._entries.move_to_end(tenant)
                    return entry
            forecaster = self._load(tenant, path, shared)
            with self._lock:
                self.loads += 1
                self._loading.pop(tenant, None)
                return self._activate(tenant, forecaster)

    def _load(self, tenant: str, path, shared) -> Forecaster:
        """One checkpoint load, counted on failure and hookable for faults."""
        try:
            hook = self._load_hook
            if hook is not None:
                hook(tenant, path)
            return Forecaster.load(path, network=shared)
        except BaseException:
            with self._lock:
                self.load_failures += 1
            raise

    # ------------------------------------------------------------------ #
    def set_fallback(self, tenant: str, forecaster: Forecaster) -> None:
        """Register a degraded-mode forecaster for ``tenant``.

        Typically a last-known-good checkpoint loaded on the shared
        network.  When the tenant's circuit breaker is open the engine
        serves from this instead of failing fast; the fallback is never
        online-updated and never evicted (it is not a pool entry).
        """
        with self._lock:
            self._fallbacks[str(tenant)] = forecaster

    def fallback_for(self, tenant: str) -> Forecaster | None:
        with self._lock:
            return self._fallbacks.get(str(tenant))

    def get_for_update(self, tenant: str) -> PoolEntry:
        """Like :meth:`get`, but pin the entry dirty *before* returning.

        The caller is about to mutate the tenant's in-memory state; marking
        it dirty under the pool lock closes the window where a concurrent
        eviction could select the still-clean entry and then the mutation
        would land on an orphan (silently losing the update on reload).
        Prefer :meth:`updating`, which additionally holds a writer pin for
        the duration of the step.
        """
        with self._lock:
            entry = self.get(tenant)
            entry.mark_dirty()
            return entry

    @contextlib.contextmanager
    def updating(self, tenant: str, mark_dirty: bool = True):
        """Writer-pinned access to ``tenant`` for one online update.

        Acquires the entry under the pool lock, increments its writer pin
        count (and by default latches it dirty) before yielding, and always
        releases the pin afterwards.  While pinned the entry cannot be
        selected by LRU eviction, so an update can never land on an object
        the pool no longer serves; unlike the dirty latch the pin is
        transient, covering exactly the in-flight step.
        """
        with self._lock:
            entry = self.get(tenant)
            entry.pins += 1
            if mark_dirty:
                entry.mark_dirty()
        try:
            yield entry
        finally:
            with self._lock:
                entry.pins -= 1

    def forecaster(self, tenant: str) -> Forecaster:
        """Convenience: the loaded :class:`Forecaster` for ``tenant``."""
        return self.get(tenant).forecaster

    # ------------------------------------------------------------------ #
    def _activate(self, tenant: str, forecaster: Forecaster) -> PoolEntry:
        # Served models live in eval mode: every predict's save/restore of
        # the mode is then idempotent under concurrency, and the update
        # lane restores eval before releasing its write lock.
        if hasattr(forecaster.model, "eval"):
            forecaster.model.eval()
        served = self._decorate(forecaster) if self._decorate is not None else None
        entry = PoolEntry(tenant, forecaster, served=served)
        self._entries[tenant] = entry
        self._entries.move_to_end(tenant)
        self._evict()
        return entry

    def _evict(self) -> None:
        """Drop LRU entries until the byte bound holds.

        Only *reloadable, clean, writer-free* entries are evictable: a
        tenant without a registered checkpoint path could never be served
        again, a dirty one (online updates since load) would silently lose
        accepted learning, and one with in-flight writers (``pins > 0``)
        would have its update land on an orphaned object — all stay pinned
        even over the bound, surfaced via ``stats()["pinned"]``.  The
        evicted entry's serving view is NOT closed here: a worker may be
        mid-predict on it; dropping the reference lets it retire when the
        in-flight work finishes.
        """
        if self.max_bytes is None:
            return
        while len(self._entries) > 1 and self.resident_bytes > self.max_bytes:
            victim = next(
                (
                    tenant
                    for tenant, entry in self._entries.items()
                    if tenant in self._paths and not entry.dirty and entry.pins == 0
                ),
                None,
            )
            if victim is None or victim == next(reversed(self._entries)):
                # Nothing evictable, or only the most recently used is left.
                return
            del self._entries[victim]
            self.evictions += 1

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        with self._lock:
            pinned = sum(
                1
                for tenant, entry in self._entries.items()
                if entry.dirty or entry.pins > 0 or tenant not in self._paths
            )
            return {
                "resident": len(self._entries),
                "registered": len(self._paths),
                "pinned": pinned,
                "write_pinned": sum(
                    1 for entry in self._entries.values() if entry.pins > 0
                ),
                "resident_bytes": self.resident_bytes,
                "max_bytes": self.max_bytes,
                "loads": self.loads,
                "hits": self.hits,
                "evictions": self.evictions,
                "load_failures": self.load_failures,
                "fallbacks": len(self._fallbacks),
            }

    def reset_views(self) -> None:
        """Close decorated serving views; tenants stay resident, undecorated.

        Used by a closing engine that attached its own decorator (sharding)
        to a caller-owned pool: the pool survives for the next engine, the
        shard executors do not.
        """
        with self._lock:
            self._decorate = None
            for entry in self._entries.values():
                if entry.served is not entry.forecaster:
                    close = getattr(entry.served, "close", None)
                    if close is not None:
                        close()
                    entry.served = entry.forecaster

    def close(self) -> None:
        with self._lock:
            for entry in self._entries.values():
                close = getattr(entry.served, "close", None)
                if close is not None and entry.served is not entry.forecaster:
                    close()
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, tenant: str) -> bool:
        with self._lock:
            return tenant in self._entries or tenant in self._paths
