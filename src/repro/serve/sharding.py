"""Node-sharded inference: shard planning and the sharded serving view.

The sensor network's nodes are partitioned into ``K`` contiguous ranges
(:class:`ShardPlanner`).  Contiguity matters: a contiguous node range is a
contiguous CSR row block of the shared adjacency
(:meth:`repro.graph.Graph.row_block`), so per-shard edge accounting and
shard-local graph views never re-sort indices.  The planner also measures
the *edge cut* — the fraction of edges crossing shard boundaries — which is
the quantity a production partitioner would minimise.

:class:`ShardedForecaster` is the serving view over one
:class:`~repro.serve.forecaster.Forecaster`:

* ``mode="replicate"`` (default, **exact**): every shard worker runs the
  full-graph forward and contributes only its own node rows to the stitched
  output.  This is the replica-per-partition topology (each worker could be
  a separate host owning one sensor range); within one process compute is
  replicated, so it is a correctness-first prototype of the scale-out
  *shape*, bit-identical to the unsharded ``predict`` by construction.
* ``mode="partition"`` (**approximate**): each shard predicts on a graph
  view keeping only shard-internal edges (``GraphDelta`` node mask), so
  cross-shard diffusion is dropped.  Exact precisely when the adjacency is
  block-diagonal along the plan and the model has no global mixing (e.g.
  ``use_adaptive=False``); otherwise accuracy degrades with the edge cut,
  which :attr:`ShardPlan.edge_cut` quantifies up front.

Workers run on a thread pool; the first call after construction runs the
shards sequentially so every lazily built support/transpose cache is warmed
single-threaded before concurrent traffic hits it.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, GraphError
from ..graph.graph import Graph

__all__ = ["Shard", "ShardPlan", "ShardPlanner", "ShardedForecaster"]

_SHARD_MODES = ("replicate", "partition")


@dataclass(frozen=True)
class Shard:
    """One contiguous node range ``[start, stop)`` of the partition."""

    index: int
    start: int
    stop: int
    internal_edges: int = 0
    outgoing_edges: int = 0

    @property
    def num_nodes(self) -> int:
        return self.stop - self.start

    def node_mask(self, num_nodes: int) -> np.ndarray:
        """Boolean keep-mask selecting exactly this shard's nodes."""
        mask = np.zeros(num_nodes, dtype=bool)
        mask[self.start : self.stop] = True
        return mask


@dataclass(frozen=True)
class ShardPlan:
    """A full partition of a graph's nodes into contiguous shards."""

    shards: tuple[Shard, ...]
    num_nodes: int
    total_edges: int

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def cut_edges(self) -> int:
        """Edges whose endpoints land in different shards."""
        return sum(shard.outgoing_edges for shard in self.shards)

    @property
    def edge_cut(self) -> float:
        """Fraction of all edges crossing a shard boundary (0 when edgeless)."""
        return self.cut_edges / self.total_edges if self.total_edges else 0.0

    def describe(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "num_nodes": self.num_nodes,
            "total_edges": self.total_edges,
            "cut_edges": self.cut_edges,
            "edge_cut": self.edge_cut,
            "shards": [
                {
                    "index": shard.index,
                    "start": shard.start,
                    "stop": shard.stop,
                    "internal_edges": shard.internal_edges,
                    "outgoing_edges": shard.outgoing_edges,
                }
                for shard in self.shards
            ],
        }


class ShardPlanner:
    """Partition a graph's nodes into ``K`` balanced contiguous ranges."""

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)

    def plan(self, graph: Graph) -> ShardPlan:
        if graph.num_nodes < self.num_shards:
            raise GraphError(
                f"cannot split {graph.num_nodes} nodes into {self.num_shards} shards"
            )
        bounds = np.linspace(0, graph.num_nodes, self.num_shards + 1).round().astype(int)
        shards = []
        for index, (start, stop) in enumerate(zip(bounds[:-1], bounds[1:])):
            block = graph.row_block(int(start), int(stop))
            inside = (block.indices >= start) & (block.indices < stop)
            internal = int(inside.sum())
            shards.append(
                Shard(
                    index=index,
                    start=int(start),
                    stop=int(stop),
                    internal_edges=internal,
                    outgoing_edges=int(block.nnz - internal),
                )
            )
        return ShardPlan(shards=tuple(shards), num_nodes=graph.num_nodes,
                         total_edges=graph.nnz)


class ShardedForecaster:
    """Run one forecaster's predict as ``K`` parallel per-shard calls.

    Parameters
    ----------
    forecaster:
        The serving facade whose graph defines the partition.
    num_shards:
        Number of contiguous node shards.
    mode:
        ``"replicate"`` (exact) or ``"partition"`` (approximate) — see the
        module docstring.
    max_workers:
        Thread-pool width; defaults to ``num_shards``.
    """

    def __init__(self, forecaster, num_shards: int, mode: str = "replicate",
                 max_workers: int | None = None):
        if mode not in _SHARD_MODES:
            raise ConfigurationError(f"shard mode must be one of {_SHARD_MODES}, got {mode!r}")
        self.forecaster = forecaster
        self.mode = mode
        self.plan = ShardPlanner(num_shards).plan(forecaster.graph)
        self._shard_graphs: list[Graph] | None = None
        if mode == "partition":
            graph = forecaster.graph
            self._shard_graphs = [
                graph.shard_view(shard.node_mask(graph.num_nodes), name=f"shard{shard.index}")
                for shard in self.plan.shards
            ]
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers or self.plan.num_shards,
            thread_name_prefix="repro-shard",
        )
        self._warm = False
        self._warm_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> Graph:
        return self.forecaster.graph

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    def _shard_predict(self, index: int, windows: np.ndarray, batch_size: int) -> np.ndarray:
        shard = self.plan.shards[index]
        if self._shard_graphs is None:
            full = self.forecaster.predict(windows, batch_size=batch_size)
        else:
            full = self.forecaster.predict(
                windows, batch_size=batch_size, graph=self._shard_graphs[index]
            )
        # Predictions are (..., nodes, channels): each worker owns its rows.
        return full[..., shard.start : shard.stop, :]

    def predict(self, windows: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Sharded forecast, stitched back along the node axis.

        In ``replicate`` mode the result is bit-identical to
        ``forecaster.predict(windows)`` for any shard count.
        """
        model = self.forecaster.model
        was_training = bool(getattr(model, "training", False))
        if hasattr(model, "eval"):
            # Pin eval mode once, outside the workers: the per-call
            # save/restore inside ``predict`` is then idempotent (False ->
            # False) instead of racing across threads.
            model.eval()
        try:
            if not self._warm:
                with self._warm_lock:
                    parts = [
                        self._shard_predict(index, windows, batch_size)
                        for index in range(self.num_shards)
                    ]
                    self._warm = True
            else:
                futures = [
                    self._executor.submit(self._shard_predict, index, windows, batch_size)
                    for index in range(self.num_shards)
                ]
                parts = [future.result() for future in futures]
        finally:
            if hasattr(model, "train"):
                model.train(was_training)
        return np.concatenate(parts, axis=-2)

    # ------------------------------------------------------------------ #
    def update(self, inputs, targets, **kwargs):
        """Online updates pass straight through to the wrapped forecaster."""
        return self.forecaster.update(inputs, targets, **kwargs)

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ShardedForecaster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedForecaster(num_shards={self.num_shards}, mode={self.mode!r}, "
            f"edge_cut={self.plan.edge_cut:.3f})"
        )
