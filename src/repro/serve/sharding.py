"""Node-sharded inference: bandwidth-aware shard planning + exact partition.

The sensor network's nodes are partitioned into ``K`` shards
(:class:`ShardPlanner`).  Two strategies:

* ``"contiguous"`` — balanced contiguous ranges in original node order
  (identity permutation).  A contiguous node range is a contiguous CSR row
  block of the shared adjacency, so per-shard edge accounting never
  re-sorts indices.
* ``"mincut"`` — greedy graph-growing (GGGP-style) over the symmetrised
  structure: each part grows from a min-degree seed by maximum gain
  (neighbours already inside the part) to a balanced size target.  The plan
  carries the resulting node *permutation*; shard ``k`` owns the permuted
  positions ``[start, stop)`` and :meth:`ShardPlan.owned` returns its
  original node ids (ascending).  Cut accounting is explicit about
  direction: ``cut_edges`` counts *directed* crossing edges,
  ``cut_edge_pairs`` counts unordered crossing pairs of the symmetrised
  structure.

:class:`ShardedForecaster` is the serving view over one
:class:`~repro.serve.forecaster.Forecaster`:

* ``mode="replicate"`` (default, **exact**): every shard worker runs the
  full-graph forward and contributes only its own node rows to the stitched
  output — the replica-per-partition topology, bit-identical to the
  unsharded ``predict`` by construction (compute is replicated).
* ``mode="partition"`` (**exact, memory-sharded**): each shard thread runs
  the forward on *only its owned node rows*.  Spatial mixes are intercepted
  by a thread-local :class:`repro.tensor.PartitionContext`: the shard's
  rectangular CSR row block (cached per ``(support, plan)``) consumes a
  gathered operand assembled by an in-process :class:`HaloExchange` that
  moves exactly the halo rows the block's columns reference.  Per-shard
  activation memory is ``O(N/K + halo)`` and outputs are **bit-identical**
  to the unsharded forward: CSR row accumulation order is preserved by the
  block construction, and channel matmuls run through the fixed-size
  blocked :func:`repro.tensor.tensor._matmul_execute` with shard boundaries
  aligned to the block size (plus the graph tail pinned to the last shard),
  so every node row sees byte-identical BLAS calls in both paths.  For
  graphs smaller than ``K *`` block size the guarantee instead rests on the
  verified small-width envelope (contraction dims < 256 and shard sizes
  >= 2 — the whole model zoo qualifies).  Dense/global supports (adaptive
  adjacency) fall back to an exact full-width gather, which
  ``strict=True`` rejects instead (guaranteeing no full-``N`` activation is
  ever materialised).

Replicate workers run on a thread pool and the first call warms caches
sequentially.  Partition workers are *lockstep* (every gather pairs with
the peers' same-round gathers), so they always run concurrently and predict
calls are serialised by a lock.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np
from scipy import sparse as sp

from ..exceptions import ConfigurationError, GraphError, ShapeError
from ..graph.graph import Graph
from ..tensor import MATMUL_BLOCK_ROWS, PartitionContext, HaloExchange, partition_scope

__all__ = ["Shard", "ShardPlan", "ShardPlanner", "ShardedForecaster"]

_SHARD_MODES = ("replicate", "partition")

_STRATEGIES = ("contiguous", "mincut")

_PLAN_TOKENS = itertools.count(1)


@dataclass(frozen=True)
class Shard:
    """One node range ``[start, stop)`` of the partition (permuted space)."""

    index: int
    start: int
    stop: int
    internal_edges: int = 0
    outgoing_edges: int = 0
    incoming_edges: int = 0

    @property
    def num_nodes(self) -> int:
        return self.stop - self.start

    def node_mask(self, num_nodes: int) -> np.ndarray:
        """Boolean keep-mask selecting exactly this shard's positions."""
        mask = np.zeros(num_nodes, dtype=bool)
        mask[self.start : self.stop] = True
        return mask


@dataclass(frozen=True)
class ShardPlan:
    """A full partition of a graph's nodes into ``K`` shards.

    ``permutation`` maps permuted position -> original node id
    (``None`` means identity / contiguous planning); within every shard the
    ids are ascending, so :meth:`owned` is always a sorted array.  ``token``
    uniquely identifies this plan instance — the partitioned-support cache
    keys on it.
    """

    shards: tuple[Shard, ...]
    num_nodes: int
    total_edges: int
    strategy: str = "contiguous"
    cut_edge_pairs: int = 0
    permutation: np.ndarray | None = field(default=None, compare=False, repr=False)
    token: int = field(default_factory=lambda: next(_PLAN_TOKENS), compare=False)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def cut_edges(self) -> int:
        """*Directed* edges whose endpoints land in different shards."""
        return sum(shard.outgoing_edges for shard in self.shards)

    @property
    def edge_cut(self) -> float:
        """Fraction of directed edges crossing a shard boundary."""
        return self.cut_edges / self.total_edges if self.total_edges else 0.0

    @cached_property
    def _owned(self) -> tuple:
        out = []
        for shard in self.shards:
            if self.permutation is None:
                out.append(np.arange(shard.start, shard.stop, dtype=np.int64))
            else:
                out.append(np.asarray(self.permutation[shard.start : shard.stop]))
        return tuple(out)

    def owned(self, index: int) -> np.ndarray:
        """Original node ids owned by shard ``index`` (ascending)."""
        return self._owned[index]

    @cached_property
    def owner_of(self) -> np.ndarray:
        """``(N,)`` array mapping each original node id to its shard index."""
        owner = np.empty(self.num_nodes, dtype=np.int32)
        for k in range(self.num_shards):
            owner[self.owned(k)] = k
        return owner

    def describe(self) -> dict:
        """JSON-friendly plan summary.

        Cut accounting is explicitly directional: ``cut_edges``/``edge_cut``
        count directed crossing edges of the stored adjacency (every cross
        edge is *outgoing* from exactly one shard and *incoming* to exactly
        one, so per-shard outgoing and incoming each sum to ``cut_edges``);
        ``cut_edge_pairs`` counts unordered crossing pairs of the
        symmetrised structure (what an undirected partitioner minimises).
        """
        return {
            "num_shards": self.num_shards,
            "num_nodes": int(self.num_nodes),
            "total_edges": int(self.total_edges),
            "strategy": self.strategy,
            "cut_edges": int(self.cut_edges),
            "edge_cut": float(self.edge_cut),
            "cut_edge_pairs": int(self.cut_edge_pairs),
            "shards": [
                {
                    "index": shard.index,
                    "start": shard.start,
                    "stop": shard.stop,
                    "internal_edges": shard.internal_edges,
                    "outgoing_edges": shard.outgoing_edges,
                    "incoming_edges": shard.incoming_edges,
                }
                for shard in self.shards
            ],
        }


class ShardPlanner:
    """Partition a graph's nodes into ``K`` balanced shards.

    ``strategy="contiguous"`` reproduces balanced contiguous ranges in the
    original order.  ``strategy="mincut"`` grows parts greedily to minimise
    the edge cut and emits a node permutation.  ``align`` (default: the
    tensor engine's matmul row-block size) rounds shard sizes to multiples
    of the block so partitioned channel matmuls issue byte-identical BLAS
    calls to the unsharded forward; it only engages when
    ``N >= K * align``.
    """

    def __init__(self, num_shards: int, strategy: str = "contiguous",
                 align: int | None = None):
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        if strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {_STRATEGIES}, got {strategy!r}"
            )
        self.num_shards = int(num_shards)
        self.strategy = strategy
        self.align = MATMUL_BLOCK_ROWS if align is None else int(align)

    # ------------------------------------------------------------------ #
    def _sizes(self, num_nodes: int) -> list[int]:
        """Balanced shard sizes, block-aligned when the graph is large enough."""
        count = self.num_shards
        unit = self.align
        if unit > 0 and num_nodes >= count * unit:
            blocks, tail = divmod(num_nodes, unit)
            per, extra = divmod(blocks, count)
            sizes = [(per + (1 if k < extra else 0)) * unit for k in range(count)]
            sizes[-1] += tail
            return sizes
        bounds = np.linspace(0, num_nodes, count + 1).round().astype(int)
        return np.diff(bounds).tolist()

    def _pinned_tail(self, num_nodes: int, sizes: list[int]) -> int:
        """Nodes pinned to the last shard so the final partial matmul block
        holds the same rows (same call size ``m``) as the unsharded forward."""
        unit = self.align
        if unit <= 0 or num_nodes <= unit or num_nodes < self.num_shards * unit:
            return 0
        return num_nodes % unit

    def _mincut_parts(self, graph: Graph, sizes: list[int], pinned_tail: int) -> list:
        """Greedy graph growing: min-degree seeds, max-gain frontier pops."""
        csr = graph.csr
        num_nodes = csr.shape[0]
        structure = csr.copy()
        if structure.nnz:
            structure.data = np.ones_like(structure.data)
        sym = sp.csr_array(structure.maximum(structure.T))
        indptr, indices = sym.indptr, sym.indices
        degree = np.diff(indptr)
        count = self.num_shards
        assign = np.full(num_nodes, -1, dtype=np.int32)
        if pinned_tail:
            assign[num_nodes - pinned_tail :] = count - 1
        # Stable sort: min degree first, smallest id on ties — deterministic.
        order = np.argsort(degree, kind="stable")
        order_pos = 0
        gain = np.zeros(num_nodes, dtype=np.int64)
        for k in range(count - 1):
            target = sizes[k]
            filled = 0
            gain[:] = 0
            heap: list = []

            def grow(node: int, k=k):
                assign[node] = k
                for neighbour in indices[indptr[node] : indptr[node + 1]]:
                    if assign[neighbour] == -1:
                        gain[neighbour] += 1
                        heapq.heappush(heap, (-gain[neighbour], neighbour))

            while filled < target:
                node = -1
                while heap:
                    negative, candidate = heapq.heappop(heap)
                    if assign[candidate] == -1 and -negative == gain[candidate]:
                        node = candidate
                        break
                if node < 0:
                    # Frontier dry (disconnected component): reseed at the
                    # min-degree unassigned node.
                    while order_pos < num_nodes and assign[order[order_pos]] != -1:
                        order_pos += 1
                    node = int(order[order_pos])
                grow(node)
                filled += 1
        remaining = np.flatnonzero(assign == -1)
        assign[remaining] = count - 1
        parts = [np.flatnonzero(assign == k) for k in range(count)]
        # Stable shard numbering: order the freely-grown parts by their
        # smallest owned id; the remainder part stays last (it carries the
        # pinned tail, which must occupy the final permuted positions).
        head = sorted(parts[:-1], key=lambda part: int(part[0]) if len(part) else -1)
        return head + [parts[-1]]

    # ------------------------------------------------------------------ #
    def plan(self, graph: Graph) -> ShardPlan:
        num_nodes = graph.num_nodes
        if num_nodes < self.num_shards:
            raise GraphError(
                f"cannot split {num_nodes} nodes into {self.num_shards} shards"
            )
        if self.strategy == "mincut":
            if num_nodes < 2 * self.num_shards:
                raise GraphError(
                    f"mincut partitioning needs >= 2 nodes per shard, got "
                    f"{num_nodes} nodes for {self.num_shards} shards"
                )
            sizes = self._sizes(num_nodes)
            pinned = self._pinned_tail(num_nodes, sizes)
            parts = self._mincut_parts(graph, sizes, pinned)
            permutation = np.concatenate(parts) if parts else np.arange(0)
            sizes = [len(part) for part in parts]
        else:
            bounds = np.linspace(0, num_nodes, self.num_shards + 1).round().astype(int)
            sizes = np.diff(bounds).tolist()
            permutation = None
        plan = ShardPlan(
            shards=self._shards_for(graph, permutation, sizes),
            num_nodes=num_nodes,
            total_edges=graph.nnz,
            strategy=self.strategy,
            cut_edge_pairs=self._cut_pairs(graph, permutation, sizes),
            permutation=permutation,
        )
        return plan

    def _owner_array(self, num_nodes: int, permutation, sizes) -> np.ndarray:
        owner = np.empty(num_nodes, dtype=np.int32)
        start = 0
        for k, size in enumerate(sizes):
            ids = (
                np.arange(start, start + size)
                if permutation is None
                else permutation[start : start + size]
            )
            owner[ids] = k
            start += size
        return owner

    def _shards_for(self, graph: Graph, permutation, sizes) -> tuple:
        owner = self._owner_array(graph.num_nodes, permutation, sizes)
        csr = graph.csr
        rows = np.repeat(np.arange(graph.num_nodes), np.diff(csr.indptr))
        owner_row = owner[rows]
        owner_col = owner[csr.indices]
        cross = owner_row != owner_col
        internal = np.bincount(owner_row[~cross], minlength=self.num_shards)
        outgoing = np.bincount(owner_row[cross], minlength=self.num_shards)
        incoming = np.bincount(owner_col[cross], minlength=self.num_shards)
        shards, start = [], 0
        for k, size in enumerate(sizes):
            shards.append(
                Shard(
                    index=k,
                    start=int(start),
                    stop=int(start + size),
                    internal_edges=int(internal[k]),
                    outgoing_edges=int(outgoing[k]),
                    incoming_edges=int(incoming[k]),
                )
            )
            start += size
        return tuple(shards)

    def _cut_pairs(self, graph: Graph, permutation, sizes) -> int:
        """Unordered crossing pairs of the symmetrised structure."""
        csr = graph.csr
        if not csr.nnz:
            return 0
        owner = self._owner_array(graph.num_nodes, permutation, sizes)
        structure = csr.copy()
        structure.data = np.ones_like(structure.data)
        sym = sp.csr_array(structure.maximum(structure.T))
        rows = np.repeat(np.arange(graph.num_nodes), np.diff(sym.indptr))
        return int((owner[rows] != owner[sym.indices]).sum()) // 2


class ShardedForecaster:
    """Run one forecaster's predict as ``K`` parallel per-shard calls.

    Parameters
    ----------
    forecaster:
        The serving facade whose graph defines the partition.
    num_shards:
        Number of node shards.
    mode:
        ``"replicate"`` (exact, replicated compute) or ``"partition"``
        (exact, memory-sharded halo exchange) — see the module docstring.
    max_workers:
        Thread-pool width; defaults to ``num_shards``.  Partition mode
        requires lockstep shard threads, so it is floored at ``num_shards``.
    strategy:
        Shard planning strategy; ``"auto"`` (default) picks ``"mincut"``
        for partition mode and ``"contiguous"`` for replicate.
    strict:
        Partition mode only: refuse dense/global supports (which need an
        exact full-width gather) instead of falling back, guaranteeing no
        full-``N`` activation is ever materialised per shard.
    halo_timeout:
        Seconds a partitioned gather waits on a peer before poisoning the
        exchange.
    """

    def __init__(self, forecaster, num_shards: int, mode: str = "replicate",
                 max_workers: int | None = None, strategy: str = "auto",
                 strict: bool = False, halo_timeout: float = 120.0):
        if mode not in _SHARD_MODES:
            raise ConfigurationError(f"shard mode must be one of {_SHARD_MODES}, got {mode!r}")
        if strategy not in ("auto",) + _STRATEGIES:
            raise ConfigurationError(
                f"strategy must be 'auto' or one of {_STRATEGIES}, got {strategy!r}"
            )
        self.forecaster = forecaster
        self.mode = mode
        if strategy == "auto":
            strategy = "mincut" if mode == "partition" else "contiguous"
        self.strategy = strategy
        self.plan = ShardPlanner(num_shards, strategy=strategy).plan(forecaster.graph)
        self.strict = bool(strict)
        self._exchange: HaloExchange | None = None
        self._contexts: list[PartitionContext] | None = None
        workers = max(max_workers or self.plan.num_shards, 1)
        if mode == "partition":
            if min(s.num_nodes for s in self.plan.shards) < 2:
                raise ConfigurationError(
                    "partition mode needs >= 2 nodes per shard for exact execution"
                )
            # Lockstep halo rounds: every shard thread must be runnable at
            # once or a gather would wait on a peer that never got a thread.
            workers = max(workers, self.plan.num_shards)
            self._exchange = HaloExchange(self.plan.num_shards, timeout=halo_timeout)
            self._contexts = [
                PartitionContext(self.plan, k, self._exchange, strict=self.strict)
                for k in range(self.plan.num_shards)
            ]
        self._executor = ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix="repro-shard",
        )
        self._warm = False
        self._warm_lock = threading.Lock()
        self._predict_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> Graph:
        return self.forecaster.graph

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    def halo_profile(self, order: int, directed: bool | None = None) -> dict:
        """Per-shard halo statistics of the serving graph under this plan."""
        return self.graph.halo_profile(self.plan, order, directed)

    # ------------------------------------------------------------------ #
    # Replicate mode
    # ------------------------------------------------------------------ #
    def _shard_predict(self, index: int, windows: np.ndarray, batch_size: int) -> np.ndarray:
        full = self.forecaster.predict(windows, batch_size=batch_size)
        # Predictions are (..., nodes, channels): each worker owns its rows.
        return full[..., self.plan.owned(index), :]

    def _predict_replicate(self, windows: np.ndarray, batch_size: int) -> np.ndarray:
        model = self.forecaster.model
        was_training = bool(getattr(model, "training", False))
        if hasattr(model, "eval"):
            # Pin eval mode once, outside the workers: the per-call
            # save/restore inside ``predict`` is then idempotent (False ->
            # False) instead of racing across threads.
            model.eval()
        try:
            if not self._warm:
                with self._warm_lock:
                    parts = [
                        self._shard_predict(index, windows, batch_size)
                        for index in range(self.num_shards)
                    ]
                    self._warm = True
            else:
                futures = [
                    self._executor.submit(self._shard_predict, index, windows, batch_size)
                    for index in range(self.num_shards)
                ]
                parts = [future.result() for future in futures]
        finally:
            if hasattr(model, "train"):
                model.train(was_training)
        out = np.empty(
            parts[0].shape[:-2] + (self.plan.num_nodes, parts[0].shape[-1]),
            dtype=parts[0].dtype,
        )
        for index, part in enumerate(parts):
            out[..., self.plan.owned(index), :] = part
        return out

    # ------------------------------------------------------------------ #
    # Partition mode (exact memory-sharded forward)
    # ------------------------------------------------------------------ #
    def _partition_worker(self, index: int, scaled: np.ndarray, batch_size: int) -> np.ndarray:
        context = self._contexts[index]
        model = self.forecaster.model
        local = scaled[..., self.plan.owned(index), :]
        try:
            with partition_scope(context):
                total = local.shape[0]
                if total <= batch_size:
                    return model.predict(local)
                # Same micro-batch boundaries on every shard: gathers are
                # lockstep, so all shards must issue the same round count.
                first = model.predict(local[:batch_size])
                out = np.empty((total,) + first.shape[1:], dtype=first.dtype)
                out[:batch_size] = first
                for start in range(batch_size, total, batch_size):
                    out[start : start + batch_size] = model.predict(
                        local[start : start + batch_size]
                    )
                return out
        except BaseException as exc:
            # Unblock peers waiting on this shard's halo rows.
            self._exchange.fail(exc)
            raise

    def _predict_partition(self, windows: np.ndarray, batch_size: int) -> np.ndarray:
        forecaster = self.forecaster
        model = forecaster.model
        with self._predict_lock:
            scaled = forecaster.scaler.transform(windows)
            was_training = bool(getattr(model, "training", False))
            if hasattr(model, "eval"):
                model.eval()
            self._exchange.reset()
            try:
                futures = [
                    self._executor.submit(self._partition_worker, k, scaled, batch_size)
                    for k in range(self.num_shards)
                ]
                parts, first_error = [], None
                for future in futures:
                    try:
                        parts.append(future.result())
                    except BaseException as exc:  # keep draining: peers are poisoned
                        if first_error is None:
                            first_error = exc
                        parts.append(None)
                if first_error is not None:
                    raise first_error
            finally:
                if hasattr(model, "train"):
                    model.train(was_training)
        out = np.empty(
            parts[0].shape[:-2] + (self.plan.num_nodes, parts[0].shape[-1]),
            dtype=parts[0].dtype,
        )
        for index, part in enumerate(parts):
            out[..., self.plan.owned(index), :] = part
        return out

    # ------------------------------------------------------------------ #
    def predict(self, windows: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Sharded forecast, stitched back along the node axis.

        Bit-identical to ``forecaster.predict(windows)`` in both modes (see
        the module docstring for partition mode's exactness envelope).
        """
        windows, single = self.forecaster._coerce_windows(windows)
        if windows.shape[0] == 0:
            raise ShapeError("predict received an empty batch of windows")
        batch_size = max(int(batch_size), 1)
        if self.mode == "partition":
            predictions = self._predict_partition(windows, batch_size)
        else:
            predictions = self._predict_replicate(windows, batch_size)
        if self.mode == "partition":
            predictions = self.forecaster.scaler.inverse_transform_channel(
                predictions, self.forecaster.target_channel
            )
        return predictions[0] if single else predictions

    # ------------------------------------------------------------------ #
    def update(self, inputs, targets, **kwargs):
        """Online updates pass straight through to the wrapped forecaster."""
        return self.forecaster.update(inputs, targets, **kwargs)

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ShardedForecaster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedForecaster(num_shards={self.num_shards}, mode={self.mode!r}, "
            f"strategy={self.strategy!r}, edge_cut={self.plan.edge_cut:.3f})"
        )
