"""The :class:`Forecaster` facade — one object for online forecasting.

The paper's setting is *continual*: a model is trained on a stream, keeps
serving predictions while the stream grows, and is updated in place on
newly arrived windows without forgetting old periods.  ``Forecaster``
packages that loop behind four verbs:

* :meth:`fit` — continual training over a streaming scenario,
* :meth:`predict` — raw un-scaled windows in, raw predictions out
  (micro-batched, no autograd graph),
* :meth:`update` — one replay-augmented continual step on new raw data,
* :meth:`save` / :meth:`load` — durable round-trip of the whole serving
  state (model, optimizer, scaler, graph, replay buffer, RNG streams).

``Forecaster.load(path).predict(x)`` equals the pre-save ``predict(x)``
bit-for-bit: parameters, scaler statistics and the library dtype are all
restored losslessly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core import checkpoint as ckpt
from ..core.config import TrainingConfig, URCLConfig
from ..core.results import ContinualResult
from ..core.trainer import ContinualTrainer
from ..core.urcl import StepOutput, URCLModel
from ..data.scalers import IdentityScaler, Scaler
from ..data.streaming import StreamingScenario
from ..exceptions import ConfigurationError, ShapeError
from ..nn.optim import Adam, Optimizer, clip_grad_norm
from ..tensor import traced_execution
from ..utils.checkpoint import Checkpoint

__all__ = ["Forecaster", "impute_missing"]


def impute_missing(window: np.ndarray) -> tuple[np.ndarray, int]:
    """Mask-and-impute NaN/Inf cells in one ``(time, nodes, channels)`` window.

    Each corrupt cell is replaced by its node/channel's mean over the
    window's *finite* time steps — the standard last-resort imputation for
    a sensor that glitched mid-window.  A node/channel with no finite
    observation at all (sensor fully dark) imputes to 0, which is the
    scaled-space mean for standardised data and keeps the model's input
    finite either way.

    Returns ``(window, imputed_cells)``; the input array is returned
    untouched when it is already finite, a repaired copy otherwise.
    """
    window = np.asarray(window, dtype=float)
    mask = ~np.isfinite(window)
    count = int(mask.sum())
    if count == 0:
        return window, 0
    finite = np.where(mask, 0.0, window)
    observed = (~mask).sum(axis=0)                       # (nodes, channels)
    sums = finite.sum(axis=0)
    means = np.divide(sums, np.maximum(observed, 1))
    means = np.where(observed > 0, means, 0.0)
    repaired = window.copy()
    repaired[mask] = np.broadcast_to(means, window.shape)[mask]
    return repaired, count


class Forecaster:
    """Facade over ``model + scaler + graph`` for streaming inference.

    Parameters
    ----------
    model:
        Any registered model (usually a :class:`URCLModel`; plain
        backbones work for predict-only serving).
    scaler:
        The scaler fitted on the stream's base period.  ``predict`` and
        ``update`` consume *raw* data and apply it internally; defaults to
        the identity.
    target_channel:
        Original-data channel the model predicts (scalers are fitted on
        all channels, predictions carry only this one).
    training:
        Optimisation settings used by :meth:`fit` and :meth:`update`.
    optimizer:
        Optional externally managed optimizer; by default one Adam
        instance is created lazily and shared by ``fit`` and ``update`` so
        moments persist across the whole online lifetime.
    """

    def __init__(
        self,
        model,
        scaler: Scaler | None = None,
        target_channel: int = 0,
        training: TrainingConfig | None = None,
        optimizer: Optimizer | None = None,
    ):
        self.model = model
        self.scaler = scaler if scaler is not None else IdentityScaler()
        self.target_channel = int(target_channel)
        self.training = training or TrainingConfig()
        self._optimizer = optimizer
        self._trainer: ContinualTrainer | None = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_scenario(
        cls,
        scenario: StreamingScenario,
        config: URCLConfig | None = None,
        training: TrainingConfig | None = None,
        seed: int = 0,
    ) -> "Forecaster":
        """Build an (untrained) URCL forecaster sized for ``scenario``."""
        spec = scenario.spec
        if spec is None:
            raise ConfigurationError(
                "from_scenario requires a scenario built from a registered dataset"
            )
        model = URCLModel(
            scenario.network,
            in_channels=spec.num_channels,
            input_steps=spec.input_steps,
            output_steps=spec.output_steps,
            out_channels=1,
            config=config,
            rng=seed,
        )
        return cls(
            model,
            scaler=scenario.scaler,
            target_channel=spec.target_channel,
            training=training,
        )

    # ------------------------------------------------------------------ #
    @property
    def network(self):
        return self.model.network

    @property
    def graph(self):
        """The CSR-backed :class:`repro.graph.Graph` the model serves on."""
        return self.network.graph

    @property
    def optimizer(self) -> Optimizer:
        """The (lazily created) optimizer shared by ``fit`` and ``update``."""
        if self._optimizer is None:
            self._optimizer = Adam(
                self.model.parameters(),
                lr=self.training.learning_rate,
                weight_decay=self.training.weight_decay,
            )
        return self._optimizer

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        scenario: StreamingScenario,
        method_name: str = "URCL",
        checkpoint_dir: str | Path | None = None,
        max_sets: int | None = None,
    ) -> ContinualResult:
        """Run the continual training protocol over ``scenario``.

        The trainer shares this forecaster's optimizer (so a later
        :meth:`update` continues from the same Adam moments) and persists
        across calls: ``fit(scenario, max_sets=1)`` followed by
        ``fit(scenario)`` continues from the second stream period instead
        of retraining the base set.
        """
        if self._trainer is None:
            self._trainer = ContinualTrainer(self.model, self.training, optimizer=self.optimizer)
        return self._trainer.run(
            scenario,
            method_name=method_name,
            checkpoint_dir=checkpoint_dir,
            max_sets=max_sets,
        )

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def _coerce_windows(self, windows: np.ndarray) -> tuple[np.ndarray, bool]:
        windows = np.asarray(windows, dtype=float)
        single = windows.ndim == 3
        if single:
            windows = windows[None]
        if windows.ndim != 4:
            raise ShapeError(
                "predict expects one (time, nodes, channels) window or a batch "
                f"of them; got shape {windows.shape}"
            )
        return windows, single

    def predict(self, windows: np.ndarray, batch_size: int = 64, graph=None,
                traced: bool | None = None) -> np.ndarray:
        """Forecast from raw, un-scaled observation windows.

        ``windows`` is a single ``(input_steps, nodes, channels)`` window or
        a batch ``(batch, input_steps, nodes, channels)``.  Inputs are
        scaled with the fitted scaler, run through the model in
        ``batch_size`` micro-batches without building an autograd graph,
        and predictions are mapped back to physical units.  Returns raw
        predictions shaped like the input (batch axis dropped for a single
        window).

        ``graph`` optionally serves this call on an updated sensor graph (a
        :class:`repro.graph.Graph` with the same node set — e.g. road
        closures reflected as dropped edges) without touching the fitted
        model: diffusion supports are pulled from the override and cached
        on it for subsequent calls.

        ``traced`` overrides compiled (tape-replay) execution for this call
        only: ``True``/``False`` force it on/off, ``None`` (default) keeps
        the global :func:`repro.tensor.set_traced_execution` setting.
        """
        if traced is not None:
            with traced_execution(traced):
                return self.predict(windows, batch_size=batch_size, graph=graph)
        windows, single = self._coerce_windows(windows)
        if windows.shape[0] == 0:
            raise ShapeError("predict received an empty batch of windows")
        batch_size = max(int(batch_size), 1)
        scaled = self.scaler.transform(windows)
        total = scaled.shape[0]

        def run(chunk: np.ndarray) -> np.ndarray:
            # Only thread the override through when one was given: classical
            # forecasters (ARIMA/HA) expose a graph-free predict.
            if graph is None:
                return self.model.predict(chunk)
            return self.model.predict(chunk, graph=graph)

        if total <= batch_size:
            predictions = run(scaled)
        else:
            # One output buffer sized from the first micro-batch; every
            # later slice is written in place instead of collecting chunks
            # and paying a full concatenate copy at the end.
            first = run(scaled[:batch_size])
            predictions = np.empty((total,) + first.shape[1:], dtype=first.dtype)
            predictions[:batch_size] = first
            for start in range(batch_size, total, batch_size):
                predictions[start : start + batch_size] = run(
                    scaled[start : start + batch_size]
                )
        predictions = self.scaler.inverse_transform_channel(predictions, self.target_channel)
        return predictions[0] if single else predictions

    def predict_many(
        self, windows_by_key: dict, batch_size: int = 64, graph=None
    ) -> dict:
        """Forecast several window stacks in as few fused calls as possible.

        ``windows_by_key`` maps arbitrary keys (request ids, sensors of
        interest, tenant sub-streams) to a single window or a stack of
        windows.  Entries are grouped by window shape and every group runs
        through one :meth:`predict` call, so callers holding many small
        stacks stop fragmenting the micro-batcher into per-entry calls.
        Returns ``{key: predictions}`` with each entry shaped like its
        input (batch axis dropped for single windows).
        """
        coerced: dict = {}
        groups: dict[tuple, list] = {}
        for key, stack in windows_by_key.items():
            array, single = self._coerce_windows(stack)
            if array.shape[0] == 0:
                raise ShapeError(f"predict_many received an empty stack for key {key!r}")
            coerced[key] = (array, single)
            groups.setdefault(array.shape[1:], []).append(key)
        results: dict = {}
        for keys in groups.values():
            fused = np.concatenate([coerced[key][0] for key in keys], axis=0)
            predictions = self.predict(fused, batch_size=batch_size, graph=graph)
            offset = 0
            for key in keys:
                array, single = coerced[key]
                chunk = predictions[offset : offset + array.shape[0]]
                offset += array.shape[0]
                results[key] = chunk[0] if single else chunk
        return results

    # ------------------------------------------------------------------ #
    # Online continual update
    # ------------------------------------------------------------------ #
    def update(
        self, inputs: np.ndarray, targets: np.ndarray, set_name: str = "online",
        graph=None, traced: bool | None = None,
    ) -> StepOutput:
        """One continual training step on newly arrived raw data.

        ``inputs`` carries all observation channels, ``targets`` only the
        target channel (the shapes produced by the streaming datasets).
        The step is replay-augmented exactly like Algorithm 1: replayed
        windows are retrieved and mixed in, the combined task+SSL loss is
        back-propagated, gradients are clipped and the shared optimizer
        steps; the new windows then enter the replay buffer for future
        retrieval.

        ``graph`` optionally runs the whole step (prediction and
        contrastive branches) on an updated :class:`repro.graph.Graph`;
        ``traced`` overrides compiled execution for this step only (see
        :meth:`predict`).
        """
        if traced is not None:
            with traced_execution(traced):
                return self.update(inputs, targets, set_name=set_name, graph=graph)
        if not hasattr(self.model, "training_step"):
            raise ConfigurationError(
                f"{type(self.model).__name__} does not support online updates; "
                "serve a URCLModel (or another model exposing training_step)"
            )
        inputs, single = self._coerce_windows(inputs)
        targets = np.asarray(targets, dtype=float)
        if single:
            targets = targets[None]
        scaled_inputs = self.scaler.transform(inputs)
        scaled_targets = self.scaler.transform_channel(targets, self.target_channel)
        self.model.train(True)
        step = self.model.training_step(
            scaled_inputs, scaled_targets, set_name=set_name, graph=graph
        )
        self.model.zero_grad()
        step.total_loss.backward()
        if self.training.grad_clip > 0:
            clip_grad_norm(self.model.parameters(), self.training.grad_clip)
        self.optimizer.step()
        return step

    # ------------------------------------------------------------------ #
    # In-memory rollback state
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Copy the mutable learned state (parameters + optimizer slots).

        Taken by the serving engine under the tenant's write lock before
        every online update, so a crash mid-step can roll back with
        :meth:`restore_state` and never publish half-stepped Adam moments.
        Deliberately excludes the replay buffer: extra buffered windows
        after a failed step are harmless, while torn weights are not.
        """
        state = {"model": self.model.state_dict()}
        if self._optimizer is not None:
            state["optimizer"] = self._optimizer.state_dict()
        return state

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`snapshot_state` copy in place (bit-exact)."""
        self.model.load_state_dict(state["model"])
        if "optimizer" in state and self._optimizer is not None:
            self._optimizer.load_state_dict(state["optimizer"])

    # ------------------------------------------------------------------ #
    # Durable state
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Write the full serving state to ``path`` (a directory).

        When :meth:`fit` has run, the trainer's progress (completed stream
        periods, partial results, shuffle stream) is included, so a loaded
        forecaster's next ``fit`` continues the stream instead of
        retraining the base set.
        """
        checkpoint = Checkpoint(meta={"kind": "forecaster"})
        ckpt.pack_dtype(checkpoint)
        ckpt.pack_model(checkpoint, self.model)
        ckpt.pack_scaler(checkpoint, self.scaler)
        ckpt.pack_network(checkpoint, self.network)
        rng_roots = {"model": self.model}
        if self._trainer is not None:
            rng_roots["trainer"] = self._trainer._rng
            checkpoint.meta["progress"] = {
                "completed_sets": self._trainer.completed_sets,
                "result": None
                if self._trainer._partial_result is None
                else self._trainer._partial_result.to_state(),
            }
        ckpt.pack_rng(checkpoint, rng_roots)
        if self._optimizer is not None:
            ckpt.pack_optimizer(checkpoint, self._optimizer)
        if getattr(self.model, "buffer", None) is not None:
            ckpt.pack_buffer(checkpoint, self.model.buffer)
        checkpoint.meta["target_channel"] = self.target_channel
        checkpoint.meta["training"] = self.training.to_dict()
        return checkpoint.save(path)

    @classmethod
    def load(cls, path: "str | Path | Checkpoint", network=None) -> "Forecaster":
        """Rebuild a forecaster saved by :meth:`save`.

        Also opens trainer checkpoints written by
        ``ContinualTrainer.save_checkpoint(..., scenario=...)`` — the
        bundle layout is shared — so a killed training run can be served
        directly from its last checkpoint.  An already loaded
        :class:`Checkpoint` is accepted to avoid re-reading the bundle.

        ``network`` optionally supplies a *shared* sensor network (the
        multi-tenant pool's): the stored adjacency is validated against it
        and the model is rebuilt on the shared graph, so diffusion supports
        are built once per process instead of once per tenant.
        """
        checkpoint = path if isinstance(path, Checkpoint) else Checkpoint.load(path)
        ckpt.apply_dtype(checkpoint)
        network = ckpt.unpack_network(checkpoint, shared=network)
        model = ckpt.unpack_model(checkpoint, network=network, rng=0)
        scaler = ckpt.unpack_scaler(checkpoint)
        if scaler is None:
            # Serving without the training-time scaler would silently feed
            # raw data to a model trained on scaled inputs.
            raise ConfigurationError(
                "checkpoint has no scaler section and cannot be served; save it "
                "through Forecaster.save or ContinualTrainer.save_checkpoint("
                "..., scenario=...), or wrap the model in Forecaster(...) manually"
            )
        training = TrainingConfig.from_dict(checkpoint.meta.get("training", {}))
        forecaster = cls(
            model,
            scaler=scaler,
            target_channel=int(checkpoint.meta.get("target_channel", 0)),
            training=training,
        )
        optimizer_entry = checkpoint.meta.get("optimizer")
        if optimizer_entry is not None:
            # Recreate the *stored* optimizer type (fit/update may have used
            # SGD or AdamW); load_state_dict then restores its hypers.
            forecaster._optimizer = ckpt.make_optimizer(
                optimizer_entry.get("type", "Adam"), model.parameters()
            )
            ckpt.unpack_optimizer(checkpoint, forecaster._optimizer)
        if getattr(model, "buffer", None) is not None:
            ckpt.unpack_buffer(checkpoint, model.buffer)
        rng_roots = {"model": model}
        progress = checkpoint.meta.get("progress")
        if progress is not None:
            # Rebuild the trainer so the next fit() continues the stream
            # (both forecaster bundles and trainer checkpoints carry this).
            trainer = ContinualTrainer(model, forecaster.training,
                                       optimizer=forecaster.optimizer)
            trainer._completed_sets = int(progress.get("completed_sets", 0))
            result_state = progress.get("result")
            if result_state is not None:
                trainer._partial_result = ContinualResult.from_state(result_state)
            forecaster._trainer = trainer
            rng_roots["trainer"] = trainer._rng
        ckpt.unpack_rng(checkpoint, rng_roots)
        return forecaster
