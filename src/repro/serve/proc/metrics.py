"""Cross-process metrics: one shared-memory shard row per worker.

Each worker owns one row (single-writer, no locks): a block of int64
counters it increments and a small float64 ring of per-batch predict
latencies.  The parent merges all rows into
``ProcessServingEngine.metrics()`` / ``health()`` so process-mode serving
reports worker-side truth (batches actually served, padding overhead,
weight-generation refreshes, predict-time percentiles) instead of only the
parent's settle-side view.
"""

from __future__ import annotations

import numpy as np

from ..metrics import percentiles
from . import shm as shmlib

__all__ = ["WorkerMetricsPlane", "WorkerMetricsShard", "COUNTERS"]

# Counter block layout (int64), one row per worker.
COUNTERS = (
    "heartbeat",        # bumped every loop iteration: liveness signal
    "batches",          # micro-batches served
    "requests",         # windows served (sum of batch counts)
    "errors",           # batches answered with an error response
    "refreshes",        # weight-generation refreshes observed
    "padded_windows",   # filler windows added to reach a bucket size
    "latency_count",    # total latency samples ever recorded
)
_NUM_COUNTERS = 8  # round up for alignment headroom
LATENCY_SLOTS = 512

_ROW_NBYTES = (
    (_NUM_COUNTERS * 8 + shmlib.ALIGN - 1) // shmlib.ALIGN * shmlib.ALIGN
    + LATENCY_SLOTS * 8
)


class WorkerMetricsPlane:
    """Parent side: create/attach the all-workers metrics segment."""

    def __init__(self, segment, num_workers: int, owner: bool):
        self._segment = segment
        self.num_workers = int(num_workers)
        self.owner = owner

    @classmethod
    def create(cls, num_workers: int) -> "WorkerMetricsPlane":
        segment = shmlib.create_segment(num_workers * _ROW_NBYTES, tag="metrics")
        plane = cls(segment, num_workers, owner=True)
        np.ndarray(
            num_workers * _ROW_NBYTES, dtype=np.uint8, buffer=segment.buf
        )[:] = 0
        return plane

    @classmethod
    def attach(cls, spec: tuple) -> "WorkerMetricsPlane":
        name, num_workers = spec
        return cls(shmlib.attach(name), num_workers, owner=False)

    @property
    def spec(self) -> tuple:
        return (self._segment.name, self.num_workers)

    @property
    def name(self) -> str:
        return self._segment.name

    def shard(self, worker_index: int) -> "WorkerMetricsShard":
        return WorkerMetricsShard(self._segment, worker_index)

    # -------------------------------------------------------------- #
    def read(self, worker_index: int) -> dict:
        """One worker's counters + latency percentiles (parent side)."""
        shard = self.shard(worker_index)
        counters = {name: int(shard.counters[i]) for i, name in enumerate(COUNTERS)}
        samples = shard.latency_samples()
        counters["predict_latency_ms"] = percentiles([s * 1e3 for s in samples])
        return counters

    def merged(self) -> dict:
        """Sum counters across workers; pool latency samples for percentiles."""
        totals = dict.fromkeys(COUNTERS, 0)
        samples: list[float] = []
        per_worker = []
        for index in range(self.num_workers):
            row = self.read(index)
            per_worker.append(row)
            for name in COUNTERS:
                totals[name] += row[name]
            samples.extend(self.shard(index).latency_samples())
        totals.pop("heartbeat", None)
        totals["predict_latency_ms"] = percentiles([s * 1e3 for s in samples])
        totals["per_worker"] = per_worker
        return totals

    def close(self) -> None:
        shmlib.close_quietly(self._segment)

    def unlink(self) -> None:
        shmlib.close_quietly(self._segment)
        shmlib.unlink_quietly(self._segment)


class WorkerMetricsShard:
    """One worker's single-writer row."""

    def __init__(self, segment, worker_index: int):
        base = int(worker_index) * _ROW_NBYTES
        self.counters = np.ndarray(
            _NUM_COUNTERS, dtype=np.int64, buffer=segment.buf, offset=base
        )
        lat_offset = base + _ROW_NBYTES - LATENCY_SLOTS * 8
        self.latencies = np.ndarray(
            LATENCY_SLOTS, dtype=np.float64, buffer=segment.buf, offset=lat_offset
        )
        self._index = {name: i for i, name in enumerate(COUNTERS)}

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[self._index[name]] += amount

    def record_latency(self, seconds: float) -> None:
        count = int(self.counters[self._index["latency_count"]])
        self.latencies[count % LATENCY_SLOTS] = seconds
        self.counters[self._index["latency_count"]] = count + 1

    def latency_samples(self) -> list[float]:
        count = int(self.counters[self._index["latency_count"]])
        filled = min(count, LATENCY_SLOTS)
        return [float(v) for v in self.latencies[:filled]]

    def release(self) -> None:
        self.counters = None
        self.latencies = None
