"""Process-parallel serving: shared-memory plane, SPSC rings, seqlock updates.

See :class:`ProcessServingEngine` for the engine and the sibling modules
for the moving parts: :mod:`~repro.serve.proc.shm` (segments + manifests +
leak-proof lifecycle), :mod:`~repro.serve.proc.plane` (published model
plane and the single-writer weight lane), :mod:`~repro.serve.proc.ring`
(request/response rings), :mod:`~repro.serve.proc.metrics` (per-worker
metric shards) and :mod:`~repro.serve.proc.worker` (the worker process).
"""

from .engine import ProcessServingEngine, resolve_start_method
from .metrics import WorkerMetricsPlane, WorkerMetricsShard
from .plane import ModelPlane, PlaneView, bucket_sizes, pad_to_bucket
from .ring import SpscRing

__all__ = [
    "ProcessServingEngine",
    "resolve_start_method",
    "ModelPlane",
    "PlaneView",
    "bucket_sizes",
    "pad_to_bucket",
    "SpscRing",
    "WorkerMetricsPlane",
    "WorkerMetricsShard",
]
