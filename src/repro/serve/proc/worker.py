"""The serving worker process: map the plane, drain the ring, replay.

``worker_main`` is the target of every :class:`ProcessServingEngine`
worker.  It attaches the published :class:`~repro.serve.proc.plane.PlaneView`
(zero-copy weights + CSR supports + compiled predict programs), rebuilds a
per-tenant forecaster, then loops: pop a micro-batch from its request ring,
pad it up to a compiled bucket size, replay the captured program, and push
the predictions into the response ring — raw bytes both ways, no pickling.

Weight freshness is pull-based and torn-proof.  Each batch first compares
the tenant's seqlock ``generation`` with the one bound at startup; on the
*first* flip the worker leaves zero-copy mode — it snapshots the active
block into private arrays, rebinds every parameter to them, and drops the
model's cached program instances (the structures stay installed, so the
rebuild replays without re-capturing).  Later flips are a plain in-place
``np.copyto`` refresh.  During the zero-copy phase a predict that raced
*two* flips (the writer may have re-entered the block the worker still has
mapped) is detected by the generation distance and redone from a private
snapshot, so served predictions are never computed from torn weights.

If the parent dies, the worker unlinks every segment it knows by name
(idempotently — siblings race to the same cleanup) and exits, leaving
``/dev/shm`` empty.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np

from ...tensor import forget_model
from ..sharding import ShardedForecaster
from . import ring as ringlib
from .metrics import WorkerMetricsPlane
from .plane import PlaneView, pad_to_bucket

__all__ = ["worker_main"]


def _bind_private(plane: PlaneView, state: dict, tenant: str) -> None:
    """Leave zero-copy mode: snapshot weights, rebind, drop stale instances."""
    model = state["model"]
    private = state["private"]
    if private is None:
        private = {
            name: np.empty(param.data.shape, dtype=param.data.dtype)
            for name, param in model.named_parameters()
        }
    state["generation"] = plane.read_weights(tenant, private)
    if state["mode"] == "shared":
        for name, param in model.named_parameters():
            param.data = private[name]
        # Cached program instances captured the old (shared) arrays by
        # reference; drop them so replay rebinds.  The structures stay in
        # the global cache — the rebuild replays, it does not re-capture.
        forget_model(model)
        state["mode"] = "private"
    state["private"] = private


def _refresh_weights(plane: PlaneView, state: dict, tenant: str) -> None:
    if state["mode"] == "shared":
        _bind_private(plane, state, tenant)
    else:
        state["generation"] = plane.read_weights(tenant, state["private"])


def worker_main(
    plane_spec: dict,
    serving: dict,
    req_spec: tuple,
    resp_spec: tuple,
    metrics_spec: tuple,
    worker_index: int,
    request_event,
    response_event,
    ready_event,
) -> None:
    plane = PlaneView(plane_spec)
    plane.apply_knobs()
    plane.install_structures()
    requests = ringlib.SpscRing.attach(req_spec)
    responses = ringlib.SpscRing.attach(resp_spec)
    metrics = WorkerMetricsPlane.attach(metrics_spec)
    shard = metrics.shard(worker_index)

    meta = plane.meta
    tenants = plane.tenants
    window_shape = tuple(meta["window_shape"])
    window_dtype = np.dtype(meta["window_dtype"])
    out_dtype = np.dtype(meta["out_dtype"])
    buckets = tuple(meta["buckets"])
    parent = multiprocessing.parent_process()

    network = plane.build_network()
    states: dict[str, dict] = {}
    for tenant in tenants:
        forecaster, generation = plane.build_forecaster(tenant, network)
        served = forecaster
        if serving.get("shards", 1) > 1:
            served = ShardedForecaster(
                forecaster,
                serving["shards"],
                mode=serving.get("shard_mode", "replicate"),
            )
        states[tenant] = {
            "forecaster": forecaster,
            "served": served,
            "model": forecaster.model,
            "generation": generation,
            "mode": "shared",
            "private": None,
        }
    ready_event.set()

    def parent_dead() -> bool:
        return parent is not None and not parent.is_alive()

    def orphan_cleanup() -> None:
        requests.unlink()
        responses.unlink()
        metrics.unlink()
        plane.unlink_all()

    try:
        while True:
            if parent_dead():
                orphan_cleanup()
                return
            slot = requests.try_peek()
            if slot is None:
                if requests.stopped:
                    break
                shard.bump("heartbeat")
                request_event.wait(0.05)
                request_event.clear()
                continue
            batch_id, tenant_index, windows = ringlib.read_request(
                slot, window_shape, window_dtype
            )
            requests.commit_pop()
            tenant = tenants[tenant_index]
            state = states[tenant]

            if plane.generation(tenant) != state["generation"]:
                _refresh_weights(plane, state, tenant)
                shard.bump("refreshes")

            count = windows.shape[0]
            padded, filler = pad_to_bucket(windows, buckets)
            started = time.perf_counter()
            try:
                predictions = state["served"].predict(
                    padded, batch_size=padded.shape[0]
                )
                if (
                    state["mode"] == "shared"
                    and plane.generation(tenant) - state["generation"] >= 2
                ):
                    # Two flips raced this predict: the block our views map
                    # may have been rewritten mid-read.  Snapshot privately
                    # and redo — cheap, and only ever on an update burst.
                    _bind_private(plane, state, tenant)
                    shard.bump("refreshes")
                    predictions = state["served"].predict(
                        padded, batch_size=padded.shape[0]
                    )
                predictions = np.asarray(predictions, dtype=out_dtype)[:count]
                error = None
            except Exception as exc:  # noqa: BLE001 - forwarded to the parent
                predictions = None
                error = f"{type(exc).__name__}: {exc}"
            elapsed = time.perf_counter() - started

            while True:
                out_slot = responses.try_reserve()
                if out_slot is not None:
                    break
                if parent_dead():
                    orphan_cleanup()
                    return
                time.sleep(0.001)
            # Count the batch BEFORE publishing the response: once the
            # parent settles the future, a metrics() snapshot must already
            # include this work (tests and dashboards rely on it).
            shard.bump("heartbeat")
            shard.bump("batches")
            shard.bump("requests", count)
            shard.bump("padded_windows", filler)
            if error is not None:
                shard.bump("errors")
            shard.record_latency(elapsed)

            if error is None:
                ringlib.pack_response(out_slot, batch_id, predictions)
            else:
                ringlib.pack_error_response(out_slot, batch_id, error)
            responses.commit_push()
            response_event.set()
    finally:
        for state in states.values():
            served = state.get("served")
            if isinstance(served, ShardedForecaster):
                served.close()
        shard.release()
        requests.close()
        responses.close()
        metrics.close()
        plane.close()
