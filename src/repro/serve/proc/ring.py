"""Lock-light SPSC rings over shared memory: the request/response lanes.

One :class:`SpscRing` is a preallocated array of fixed-size slots plus a
64-byte control header (``head``/``tail``/``stop`` as int64).  Exactly one
process produces (advancing ``tail``) and exactly one consumes (advancing
``head``), so no lock is needed: the producer publishes a slot's payload
*before* the tail increment, the consumer reads the payload *after*
observing the new tail, and on cache-coherent shared memory (every platform
``multiprocessing.shared_memory`` supports) the aligned 8-byte counter
stores are atomic.  Windows and predictions cross the process boundary as
raw bytes written straight into slot payloads — no pickling, no copies
beyond the one memcpy in and one out.

Blocking is delegated to the caller: each ring direction pairs with a
``multiprocessing.Event`` doorbell rung after pushes, and waiters re-check
with a timeout so a lost wakeup degrades to a few milliseconds of latency,
never a hang.

Batch framing (engine <-> worker) rides on top via :func:`pack_request` /
:func:`read_request` and the response twins: an int64 sub-header followed
by ``count`` fixed-shape float payloads (requests carry windows, responses
carry per-window predictions or a UTF-8 error).
"""

from __future__ import annotations

import numpy as np

from . import shm as shmlib

__all__ = [
    "SpscRing",
    "request_slot_nbytes",
    "response_slot_nbytes",
    "pack_request",
    "read_request",
    "pack_response",
    "pack_error_response",
    "read_response",
    "ERROR_BYTES",
]

_CTRL_NBYTES = shmlib.ALIGN  # head, tail, stop (int64) + padding
_HEAD, _TAIL, _STOP = 0, 1, 2

_SUBHEADER = shmlib.ALIGN  # per-slot framing header
ERROR_BYTES = 512

STATUS_OK = 0
STATUS_ERROR = 1


class SpscRing:
    """Single-producer single-consumer ring of fixed-size byte slots."""

    def __init__(self, segment, capacity: int, slot_nbytes: int, owner: bool):
        self._segment = segment
        self.capacity = int(capacity)
        self.slot_nbytes = int(slot_nbytes)
        self.owner = owner
        self._ctrl = np.ndarray(8, dtype=np.int64, buffer=segment.buf, offset=0)
        self._slots = np.ndarray(
            (self.capacity, self.slot_nbytes), dtype=np.uint8,
            buffer=segment.buf, offset=_CTRL_NBYTES,
        )

    # -------------------------------------------------------------- #
    @classmethod
    def create(cls, capacity: int, slot_nbytes: int, tag: str = "ring") -> "SpscRing":
        total = _CTRL_NBYTES + int(capacity) * int(slot_nbytes)
        segment = shmlib.create_segment(total, tag=tag)
        ring = cls(segment, capacity, slot_nbytes, owner=True)
        ring._ctrl[:] = 0
        return ring

    @classmethod
    def attach(cls, spec: tuple) -> "SpscRing":
        name, capacity, slot_nbytes = spec
        return cls(shmlib.attach(name), capacity, slot_nbytes, owner=False)

    @property
    def spec(self) -> tuple:
        """Picklable handle: pass to a worker, reopen with :meth:`attach`."""
        return (self._segment.name, self.capacity, self.slot_nbytes)

    @property
    def name(self) -> str:
        return self._segment.name

    # -------------------------------------------------------------- #
    def __len__(self) -> int:
        return int(self._ctrl[_TAIL] - self._ctrl[_HEAD])

    @property
    def full(self) -> bool:
        return len(self) >= self.capacity

    def try_reserve(self) -> np.ndarray | None:
        """Producer: the next free slot's byte view, or None when full."""
        if self.full:
            return None
        return self._slots[int(self._ctrl[_TAIL]) % self.capacity]

    def commit_push(self) -> None:
        """Producer: publish the slot filled after :meth:`try_reserve`."""
        self._ctrl[_TAIL] += 1

    def try_peek(self) -> np.ndarray | None:
        """Consumer: the oldest unconsumed slot's byte view, or None."""
        if len(self) <= 0:
            return None
        return self._slots[int(self._ctrl[_HEAD]) % self.capacity]

    def commit_pop(self) -> None:
        self._ctrl[_HEAD] += 1

    # -------------------------------------------------------------- #
    def signal_stop(self) -> None:
        self._ctrl[_STOP] = 1

    @property
    def stopped(self) -> bool:
        return bool(self._ctrl[_STOP])

    # -------------------------------------------------------------- #
    def close(self) -> None:
        self._drop_views()
        shmlib.close_quietly(self._segment)

    def unlink(self) -> None:
        self._drop_views()
        shmlib.close_quietly(self._segment)
        shmlib.unlink_quietly(self._segment)

    def _drop_views(self) -> None:
        self._ctrl = None
        self._slots = None


# ------------------------------------------------------------------ #
# Batch framing
# ------------------------------------------------------------------ #
def request_slot_nbytes(max_batch: int, window_nbytes: int) -> int:
    return _SUBHEADER + int(max_batch) * int(window_nbytes)


def response_slot_nbytes(max_batch: int, out_nbytes: int) -> int:
    return _SUBHEADER + int(max_batch) * int(out_nbytes) + ERROR_BYTES


def _subheader(slot: np.ndarray) -> np.ndarray:
    return slot[:_SUBHEADER].view(np.int64)


def pack_request(slot: np.ndarray, batch_id: int, tenant_index: int,
                 windows: np.ndarray) -> None:
    """Frame one micro-batch: [batch_id, tenant, count] + stacked windows."""
    header = _subheader(slot)
    header[0] = batch_id
    header[1] = tenant_index
    header[2] = windows.shape[0]
    payload = np.ascontiguousarray(windows).reshape(-1).view(np.uint8)
    slot[_SUBHEADER:_SUBHEADER + payload.nbytes] = payload


def read_request(slot: np.ndarray, window_shape: tuple, window_dtype) -> tuple:
    """Returns ``(batch_id, tenant_index, windows-copy)``."""
    header = _subheader(slot)
    batch_id, tenant_index, count = int(header[0]), int(header[1]), int(header[2])
    nbytes = count * int(np.prod(window_shape, dtype=np.int64)) * np.dtype(window_dtype).itemsize
    windows = (
        slot[_SUBHEADER:_SUBHEADER + nbytes]
        .view(np.dtype(window_dtype))
        .reshape((count,) + tuple(window_shape))
        .copy()
    )
    return batch_id, tenant_index, windows


def pack_response(slot: np.ndarray, batch_id: int, predictions: np.ndarray) -> None:
    header = _subheader(slot)
    header[0] = batch_id
    header[1] = STATUS_OK
    header[2] = predictions.shape[0]
    header[3] = 0
    payload = np.ascontiguousarray(predictions).reshape(-1).view(np.uint8)
    slot[_SUBHEADER:_SUBHEADER + payload.nbytes] = payload


def pack_error_response(slot: np.ndarray, batch_id: int, message: str) -> None:
    header = _subheader(slot)
    encoded = message.encode("utf-8", errors="replace")[:ERROR_BYTES]
    header[0] = batch_id
    header[1] = STATUS_ERROR
    header[2] = 0
    header[3] = len(encoded)
    start = slot.shape[0] - ERROR_BYTES
    if encoded:
        slot[start:start + len(encoded)] = np.frombuffer(encoded, dtype=np.uint8)


def read_response(slot: np.ndarray, out_shape: tuple, out_dtype) -> tuple:
    """Returns ``(batch_id, predictions-copy | None, error-message | None)``."""
    header = _subheader(slot)
    batch_id, status, count, error_len = (
        int(header[0]), int(header[1]), int(header[2]), int(header[3])
    )
    if status == STATUS_OK:
        nbytes = count * int(np.prod(out_shape, dtype=np.int64)) * np.dtype(out_dtype).itemsize
        predictions = (
            slot[_SUBHEADER:_SUBHEADER + nbytes]
            .view(np.dtype(out_dtype))
            .reshape((count,) + tuple(out_shape))
            .copy()
        )
        return batch_id, predictions, None
    start = slot.shape[0] - ERROR_BYTES
    raw = bytes(slot[start:start + error_len]) if error_len else b""
    return batch_id, None, raw.decode("utf-8", errors="replace")
