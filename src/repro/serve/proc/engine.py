"""Process-parallel serving: the GIL-free sibling of :class:`ServingEngine`.

:class:`ProcessServingEngine` keeps the threaded engine's public contract —
``submit()`` returning futures, deadlines, backpressure, per-tenant rate
limits and circuit breakers, retries with backoff, graceful degradation,
``update()``, ``health()``/``stats()`` — but runs the fused forwards in
**worker processes** so K workers use K cores instead of time-slicing one.

The data path never pickles an array:

* At construction the parent publishes the **model plane**
  (:class:`~repro.serve.proc.plane.ModelPlane`): weights behind per-tenant
  seqlocks, CSR supports inside serialized compiled programs, scaler
  statistics — all in named shared-memory segments workers map zero-copy.
* Each worker owns a **request ring and a response ring**
  (:class:`~repro.serve.proc.ring.SpscRing`): the parent-side dispatcher
  memcpy's a stacked micro-batch straight into a preallocated slot, the
  worker memcpy's predictions back.
* ``update()`` runs the threaded engine's serialized, rollback-protected
  update lane on the parent's model, then flips the tenant's shared weight
  block behind its seqlock — workers pick the new generation up on their
  next batch without ever blocking a predict.

Parent-side threads are thin coordinators (batcher flusher, one dispatcher
+ one settler per worker, a supervisor that replaces dead or wedged worker
*processes* and requeues their in-flight batches); all model math happens
in the workers, so the parent's GIL is spent on bookkeeping only.

The in-process :class:`~repro.serve.engine.ServingEngine` remains the right
tool for a single tenant at K=1 — process workers buy nothing below two
cores of model work and cost fork/spawn startup plus one memcpy each way.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import threading
import time
from concurrent.futures import InvalidStateError

import numpy as np

from ...exceptions import (
    CircuitOpen,
    ConfigurationError,
    DataError,
    DeadlineExceeded,
    EngineClosed,
    QueueFull,
    RateLimited,
    ServingError,
    ShapeError,
)
from ...tensor import program_cache_stats
from ..batching import DynamicBatcher, MicroBatch, PendingRequest
from ..engine import DEFAULT_TENANT, EngineConfig
from ..forecaster import Forecaster, impute_missing
from ..metrics import EngineMetrics
from ..tenancy import CircuitBreaker, ModelPool, TokenBucket, historical_average
from . import ring as ringlib
from .metrics import WorkerMetricsPlane
from .plane import ModelPlane
from .worker import worker_main

__all__ = ["ProcessServingEngine", "resolve_start_method"]

_STOP = object()

RING_CAPACITY = 32
READY_TIMEOUT_S = 120.0


def resolve_start_method(start_method: str | None = None) -> str:
    """Pick the multiprocessing start method for worker processes.

    Priority: explicit argument, then ``REPRO_PROC_START_METHOD`` in the
    environment, then ``fork`` where available (cheapest; workers are
    spawned before any parent serving thread exists, so fork-with-threads
    hazards don't apply), else the platform default.
    """
    method = start_method or os.environ.get("REPRO_PROC_START_METHOD") or ""
    available = multiprocessing.get_all_start_methods()
    if method:
        if method not in available:
            raise ConfigurationError(
                f"start method {method!r} not available (have {available})"
            )
        return method
    return "fork" if "fork" in available else multiprocessing.get_start_method()


class _ProcWorker:
    """One worker process plus its parent-side channels and bookkeeping."""

    __slots__ = (
        "index", "lock", "process", "pinned_cpu", "requests", "responses",
        "request_event", "response_event", "ready_event",
        "inflight", "restarts", "dispatcher", "settler",
    )

    def __init__(self, index: int):
        self.index = index
        self.lock = threading.Lock()
        self.process = None
        self.pinned_cpu = None
        self.requests = None
        self.responses = None
        self.request_event = None
        self.response_event = None
        self.ready_event = None
        # batch_id -> (MicroBatch, dispatched_at_monotonic)
        self.inflight: dict[int, tuple[MicroBatch, float]] = {}
        self.restarts = 0
        self.dispatcher: threading.Thread | None = None
        self.settler: threading.Thread | None = None


class ProcessServingEngine:
    """Async serving over worker processes and shared-memory tensors.

    Parameters
    ----------
    source:
        A :class:`Forecaster` (served under the ``"default"`` tenant) or a
        prebuilt :class:`ModelPool`.  Every tenant must be resident: the
        plane is published once at construction, and tenants registered
        later cannot be served by already-running workers.
    config:
        The same :class:`~repro.serve.engine.EngineConfig` the threaded
        engine takes.  ``num_workers`` counts *processes*; ``shards > 1``
        shards node-wise inside each worker.  Fault injection is not
        supported (processes are crashed for real by the lifecycle tests).
    sample_windows:
        Optional raw windows used to warm the compiled predict path before
        publishing; zeros of the model's window shape are used otherwise.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; see
        :func:`resolve_start_method` for the default.

    Unlike the threaded engine, every request window must match the pool's
    fixed ``(input_steps, nodes, channels)`` shape exactly — ring slots are
    preallocated for it.
    """

    def __init__(self, source, config: EngineConfig | None = None, *,
                 sample_windows=None, start_method: str | None = None,
                 pin_workers: bool | None = None):
        self.config = config or EngineConfig()
        if pin_workers is None:
            pin_workers = os.environ.get("REPRO_PROC_PIN", "").strip().lower() in (
                "1", "true", "yes", "on"
            )
        # Worker CPU pinning stops the scheduler migrating workers between
        # cores mid-batch (each migration cold-starts the L2 the model plane
        # was streamed through).  Round-robin over the parent's allowed CPU
        # set; silently disabled where the platform has no affinity API.
        self.pin_workers = bool(pin_workers) and hasattr(os, "sched_setaffinity")
        self._owns_pool = isinstance(source, Forecaster)
        if isinstance(source, ModelPool):
            self.pool = source
        elif isinstance(source, Forecaster):
            self.pool = ModelPool()
            self.pool.put(DEFAULT_TENANT, source)
        else:
            raise ConfigurationError(
                "ProcessServingEngine serves a Forecaster or a ModelPool, "
                f"got {type(source).__name__}"
            )
        self.start_method = resolve_start_method(start_method)
        self._ctx = multiprocessing.get_context(self.start_method)

        self._metrics = EngineMetrics()
        self._batcher = DynamicBatcher(
            max_batch_size=self.config.max_batch_size,
            max_delay_ms=self.config.max_delay_ms,
        )
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._close_lock = threading.Lock()
        self._update_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._dispatch_lock = threading.Lock()
        self._settle_lock = threading.Lock()
        self._deadlines_used = False
        self._breaker_lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._bucket_lock = threading.Lock()
        self._tenant_buckets: dict[str, TokenBucket] = {}
        self._fallback_ctx: dict[str, tuple[tuple, int]] = {}
        self._delayed_lock = threading.Lock()
        self._delayed: list[tuple[float, MicroBatch]] = []
        self.supervisor_errors = 0
        self._batch_seq = itertools.count()
        self._dispatch_abandon = threading.Event()
        self._settlers_stop = threading.Event()
        self._final_worker_metrics: dict | None = None

        # Publish the plane (captures the compiled predict programs in the
        # parent) and spawn every worker BEFORE any parent serving thread
        # starts — fork is then safe and spawn sees a quiescent parent.
        self.plane = ModelPlane.publish(
            self.pool,
            sample_windows=sample_windows,
            max_batch_size=self.config.max_batch_size,
        )
        meta = self.plane.spec["meta"]
        self._window_shape = tuple(meta["window_shape"])
        self._window_dtype = np.dtype(meta["window_dtype"])
        self._out_shape = tuple(meta["out_shape"])
        self._out_dtype = np.dtype(meta["out_dtype"])
        self._tenant_index = {t: i for i, t in enumerate(meta["tenants"])}
        for tenant in self._tenant_index:
            self._fallback_ctx[tenant] = (
                self._out_shape, meta["models"][tenant]["target_channel"]
            )
        window_nbytes = (
            int(np.prod(self._window_shape, dtype=np.int64))
            * self._window_dtype.itemsize
        )
        out_nbytes = (
            int(np.prod(self._out_shape, dtype=np.int64)) * self._out_dtype.itemsize
        )
        self._request_slot_nbytes = ringlib.request_slot_nbytes(
            self.config.max_batch_size, window_nbytes
        )
        self._response_slot_nbytes = ringlib.response_slot_nbytes(
            self.config.max_batch_size, out_nbytes
        )
        self._serving_spec = {
            "shards": self.config.shards,
            "shard_mode": self.config.shard_mode,
            "predict_batch_size": self.config.predict_batch_size,
        }
        self.worker_metrics = WorkerMetricsPlane.create(self.config.num_workers)
        self._workers = [_ProcWorker(i) for i in range(self.config.num_workers)]
        try:
            for slot in self._workers:
                self._make_channels(slot)
                self._spawn_process(slot)
            self._wait_ready()
        except BaseException:
            self._teardown_shared_memory()
            raise

        self._flusher = threading.Thread(
            target=self._flush_loop, name="repro-procserve-flusher", daemon=True
        )
        for slot in self._workers:
            slot.dispatcher = threading.Thread(
                target=self._dispatch_loop, args=(slot,),
                name=f"repro-procserve-dispatch-{slot.index}", daemon=True,
            )
            slot.settler = threading.Thread(
                target=self._settle_loop, args=(slot,),
                name=f"repro-procserve-settle-{slot.index}", daemon=True,
            )
        self._supervisor_stop = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise_loop, name="repro-procserve-supervisor",
            daemon=True,
        )
        self._flusher.start()
        for slot in self._workers:
            slot.dispatcher.start()
            slot.settler.start()
        self._supervisor.start()

    # ------------------------------------------------------------------ #
    # Worker process lifecycle
    # ------------------------------------------------------------------ #
    def _make_channels(self, slot: _ProcWorker) -> None:
        slot.requests = ringlib.SpscRing.create(
            RING_CAPACITY, self._request_slot_nbytes, tag=f"req{slot.index}"
        )
        slot.responses = ringlib.SpscRing.create(
            RING_CAPACITY, self._response_slot_nbytes, tag=f"resp{slot.index}"
        )
        slot.request_event = self._ctx.Event()
        slot.response_event = self._ctx.Event()
        slot.ready_event = self._ctx.Event()

    def _spawn_process(self, slot: _ProcWorker) -> None:
        slot.process = self._ctx.Process(
            target=worker_main,
            args=(
                self.plane.spec,
                self._serving_spec,
                slot.requests.spec,
                slot.responses.spec,
                self.worker_metrics.spec,
                slot.index,
                slot.request_event,
                slot.response_event,
                slot.ready_event,
            ),
            name=f"repro-serve-worker-{slot.index}",
            daemon=True,
        )
        slot.process.start()
        slot.pinned_cpu = self._pin_worker(slot)

    def _pin_worker(self, slot: _ProcWorker) -> int | None:
        """Pin the freshly-spawned worker to one CPU; None when disabled."""
        if not self.pin_workers:
            return None
        try:
            cpus = sorted(os.sched_getaffinity(0))
            cpu = cpus[slot.index % len(cpus)]
            os.sched_setaffinity(slot.process.pid, {cpu})
            return cpu
        except OSError:
            return None

    def _wait_ready(self) -> None:
        deadline = time.monotonic() + READY_TIMEOUT_S
        for slot in self._workers:
            while not slot.ready_event.wait(0.1):
                if not slot.process.is_alive():
                    raise ServingError(
                        f"worker {slot.index} died during startup "
                        f"(exitcode {slot.process.exitcode}, "
                        f"start method {self.start_method!r})"
                    )
                if time.monotonic() > deadline:
                    raise ServingError(
                        f"worker {slot.index} failed to become ready within "
                        f"{READY_TIMEOUT_S:g}s"
                    )

    def _restart_worker(self, slot: _ProcWorker) -> None:
        """Replace one dead worker process; requeue its in-flight batches."""
        with slot.lock:
            old_requests, old_responses = slot.requests, slot.responses
            recovered = [batch for batch, _ in slot.inflight.values()]
            slot.inflight.clear()
            self._make_channels(slot)
            self._spawn_process(slot)
            slot.restarts += 1
        old_requests.unlink()
        old_responses.unlink()
        self._metrics.record_worker_restart()
        error = ServingError("worker process died while serving the batch")
        for batch in recovered:
            self._retry_or_fail(batch, error)

    # ------------------------------------------------------------------ #
    # Request path (mirrors ServingEngine.submit)
    # ------------------------------------------------------------------ #
    def submit(self, window: np.ndarray, tenant: str | None = None,
               deadline_ms: float | None = None):
        """Accept one raw window; resolve its future with the prediction.

        Same contract as :meth:`ServingEngine.submit`, with one extra
        constraint: the window shape must match the plane's fixed
        ``(time, nodes, channels)`` shape (ring slots are preallocated).
        """
        if self._closed:
            raise EngineClosed("engine is closed", tenant=tenant)
        window = np.asarray(window, dtype=float)
        if window.ndim != 3:
            raise ShapeError(
                f"submit expects one (time, nodes, channels) window, got shape {window.shape}"
            )
        if tuple(window.shape) != self._window_shape:
            raise ShapeError(
                "process-parallel serving preallocates fixed-shape ring slots; "
                f"expected window shape {self._window_shape}, got {tuple(window.shape)}"
            )
        tenant = DEFAULT_TENANT if tenant is None else str(tenant)
        if tenant not in self._tenant_index:
            raise ConfigurationError(
                f"unknown tenant {tenant!r} (the plane was published for "
                f"{sorted(self._tenant_index)}; tenants cannot be added to a "
                "running process engine)"
            )
        if deadline_ms is None:
            deadline_ms = self.config.deadline_default_ms
        elif deadline_ms <= 0:
            raise ConfigurationError(f"deadline_ms must be positive, got {deadline_ms}")
        if self.config.nan_policy != "propagate" and not np.isfinite(window).all():
            if self.config.nan_policy == "reject":
                self._metrics.record_nan_rejected()
                raise DataError(
                    "window contains non-finite values and nan_policy='reject'"
                )
            window, imputed = impute_missing(window)
            if imputed:
                self._metrics.record_imputed()
        if self.config.tenant_rate_limit is not None:
            if not self._bucket_for(tenant).try_acquire():
                self._metrics.record_throttled()
                raise RateLimited(
                    f"tenant {tenant!r} exceeded its admission rate "
                    f"({self.config.tenant_rate_limit:g} req/s)",
                    tenant=tenant, rate=self.config.tenant_rate_limit,
                )
        shed_attempts = 0
        while True:
            with self._pending_lock:
                pending = self._metrics.pending
                if pending < self.config.max_pending:
                    self._metrics.record_submit()
                    break
                victim = None
                if (self.config.overload_policy == "shed_oldest"
                        and shed_attempts <= 2 * self.config.max_pending):
                    victim = self._batcher.shed_oldest()
                if victim is None:
                    self._metrics.record_rejected()
                    raise QueueFull(
                        f"{pending} requests pending "
                        f"(max_pending={self.config.max_pending})",
                        tenant=tenant, pending=pending,
                        limit=self.config.max_pending,
                    )
            shed_attempts += 1
            self._settle_error(
                victim,
                QueueFull(
                    "shed under overload to admit newer work",
                    tenant=victim.tenant, pending=pending,
                    limit=self.config.max_pending,
                ),
                kind="shed",
            )
        request = PendingRequest(window=window, tenant=tenant)
        if deadline_ms is not None:
            request.deadline = time.monotonic() + deadline_ms / 1e3
            request.deadline_ms = float(deadline_ms)
            self._deadlines_used = True
        try:
            with self._dispatch_lock:
                batch = self._batcher.add(request)
                if batch is not None:
                    self._metrics.record_flush(len(batch), due_to_deadline=False)
                    self._queue.put(batch)
        except EngineClosed:
            self._metrics.record_revoked()
            raise
        return request.future

    def predict(self, window: np.ndarray, tenant: str | None = None,
                timeout: float | None = None,
                deadline_ms: float | None = None) -> np.ndarray:
        """Synchronous convenience: ``submit`` + ``Future.result``."""
        return self.submit(window, tenant=tenant, deadline_ms=deadline_ms).result(
            timeout=timeout
        )

    def _bucket_for(self, tenant: str) -> TokenBucket:
        with self._bucket_lock:
            bucket = self._tenant_buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(
                    self.config.tenant_rate_limit, burst=self.config.tenant_burst
                )
                self._tenant_buckets[tenant] = bucket
            return bucket

    def _breaker_for(self, tenant: str) -> CircuitBreaker | None:
        if self.config.breaker_failures is None:
            return None
        with self._breaker_lock:
            breaker = self._breakers.get(tenant)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.config.breaker_failures,
                    reset_timeout_s=self.config.breaker_reset_s,
                    half_open_probes=self.config.breaker_probes,
                )
                self._breakers[tenant] = breaker
            return breaker

    # ------------------------------------------------------------------ #
    # Exactly-once settlement (identical latches to the threaded engine)
    # ------------------------------------------------------------------ #
    def _mark_settled(self, request: PendingRequest) -> bool:
        with self._settle_lock:
            if request.settled:
                return False
            request.settled = True
            return True

    def _settle_result(self, request: PendingRequest, value) -> None:
        if not self._mark_settled(request):
            return
        try:
            request.future.set_result(value)
        except InvalidStateError:
            self._metrics.record_cancelled()
            return
        self._metrics.record_done(time.perf_counter() - request.submitted)

    def _settle_error(self, request: PendingRequest, exc: BaseException,
                      kind: str | None = None) -> None:
        if not self._mark_settled(request):
            return
        try:
            request.future.set_exception(exc)
        except InvalidStateError:
            self._metrics.record_cancelled()
            return
        self._metrics.record_done(
            time.perf_counter() - request.submitted, failed=True, kind=kind
        )

    def _claim(self, request: PendingRequest) -> bool:
        cancelled = False
        with self._settle_lock:
            if request.settled:
                return False
            if not request.started:
                request.started = True
                if not request.future.set_running_or_notify_cancel():
                    request.settled = True
                    cancelled = True
        if cancelled:
            self._metrics.record_cancelled()
            return False
        return True

    def _expire(self, request: PendingRequest) -> None:
        waited_ms = (time.perf_counter() - request.submitted) * 1e3
        deadline_ms = request.deadline_ms
        self._settle_error(
            request,
            DeadlineExceeded(
                f"request expired after {waited_ms:.1f} ms in queue "
                f"(deadline {deadline_ms:g} ms)" if deadline_ms is not None
                else f"request expired after {waited_ms:.1f} ms in queue",
                tenant=request.tenant, deadline_ms=deadline_ms, waited_ms=waited_ms,
            ),
            kind="expired",
        )

    def _fail_batch(self, batch: MicroBatch, exc: BaseException) -> None:
        for request in batch.requests:
            self._settle_error(request, exc)

    # ------------------------------------------------------------------ #
    # Online update lane: threaded semantics + seqlock weight flip
    # ------------------------------------------------------------------ #
    def update(self, inputs: np.ndarray, targets: np.ndarray,
               tenant: str | None = None, set_name: str = "online"):
        """One replay-augmented online step, published to every worker.

        The step runs on the *parent's* model exactly like
        :meth:`ServingEngine.update` (serialized engine-wide, rolled back
        on failure).  On success the new weights are flipped into the
        tenant's shared segment behind its seqlock: workers notice the
        generation bump on their next batch and refresh without blocking —
        predicts in flight keep serving the previous generation.
        """
        if self._closed:
            raise EngineClosed("engine is closed", tenant=tenant)
        tenant = DEFAULT_TENANT if tenant is None else str(tenant)
        if tenant not in self._tenant_index:
            raise ConfigurationError(f"unknown tenant {tenant!r}")
        with self._update_lock:
            with self.pool.updating(tenant) as entry:
                with entry.lock.write():
                    snapshot = (
                        entry.forecaster.snapshot_state()
                        if self.config.update_rollback else None
                    )
                    try:
                        step = entry.forecaster.update(inputs, targets, set_name=set_name)
                    except BaseException:
                        if snapshot is not None:
                            entry.forecaster.restore_state(snapshot)
                            self._metrics.record_rollback()
                        raise
                    finally:
                        if hasattr(entry.forecaster.model, "eval"):
                            entry.forecaster.model.eval()
                entry.refresh_nbytes()
                self.plane.publish_weights(tenant, entry.forecaster.model)
            self._metrics.record_update()
        return step

    def weight_generation(self, tenant: str | None = None) -> int:
        """The tenant's current published weight generation (0 = initial)."""
        tenant = DEFAULT_TENANT if tenant is None else str(tenant)
        return self.plane.generation(tenant)

    # ------------------------------------------------------------------ #
    # Parent-side loops
    # ------------------------------------------------------------------ #
    def _flush_loop(self) -> None:
        while True:
            batches = self._batcher.wait_due()
            if not batches and self._batcher.closed:
                return
            for batch in batches:
                self._metrics.record_flush(len(batch), due_to_deadline=True)
                self._queue.put(batch)

    def _dispatch_loop(self, slot: _ProcWorker) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            self._dispatch_batch(slot, item)

    def _dispatch_batch(self, slot: _ProcWorker, batch: MicroBatch) -> None:
        now = time.monotonic()
        live = []
        for request in batch.requests:
            if request.deadline is not None and request.deadline <= now:
                self._expire(request)
            elif self._claim(request):
                live.append(request)
        if not live:
            return
        tenant = batch.tenant
        breaker = self._breaker_for(tenant)
        if breaker is not None and not breaker.allow():
            self._metrics.record_breaker_fast_fail(len(live))
            self._serve_degraded(
                tenant, live,
                CircuitOpen(
                    f"circuit breaker for tenant {tenant!r} is open",
                    tenant=tenant, failures=breaker.failures,
                    retry_after_s=breaker.retry_after_s(),
                ),
            )
            return
        for request in live:
            request.attempts += 1
        stacked = np.ascontiguousarray(
            np.stack([request.window for request in live]),
            dtype=self._window_dtype,
        )
        pending = MicroBatch(
            tenant=tenant, requests=live, due_to_deadline=batch.due_to_deadline
        )
        batch_id = next(self._batch_seq)
        while True:
            with slot.lock:
                alive = slot.process is not None and slot.process.is_alive()
                ring_slot = slot.requests.try_reserve() if alive else None
                if ring_slot is not None:
                    ringlib.pack_request(
                        ring_slot, batch_id, self._tenant_index[tenant], stacked
                    )
                    slot.requests.commit_push()
                    slot.inflight[batch_id] = (pending, time.monotonic())
                    slot.request_event.set()
                    return
            if not alive:
                self._retry_or_fail(
                    pending,
                    ServingError("worker process died before serving the batch"),
                )
                return
            if self._dispatch_abandon.is_set():
                self._fail_batch(
                    pending, EngineClosed("engine closed before the batch was served")
                )
                return
            time.sleep(0.0005)

    def _settle_loop(self, slot: _ProcWorker) -> None:
        while True:
            slot.response_event.wait(0.05)
            slot.response_event.clear()
            self._drain_responses(slot)
            if self._settlers_stop.is_set():
                self._drain_responses(slot)
                return

    def _drain_responses(self, slot: _ProcWorker) -> None:
        while True:
            with slot.lock:
                ring_slot = slot.responses.try_peek()
                if ring_slot is None:
                    return
                batch_id, predictions, error = ringlib.read_response(
                    ring_slot, self._out_shape, self._out_dtype
                )
                slot.responses.commit_pop()
                entry = slot.inflight.pop(batch_id, None)
            if entry is None:
                continue  # already recovered by the supervisor
            self._handle_response(entry[0], predictions, error)

    def _handle_response(self, batch: MicroBatch, predictions, error) -> None:
        tenant = batch.tenant
        breaker = self._breaker_for(tenant)
        if error is not None:
            # The worker survived and reported a model error: deterministic,
            # so retrying is pointless — degrade like the threaded engine.
            if breaker is not None and breaker.record_failure():
                self._metrics.record_breaker_open()
            self._serve_degraded(
                tenant, batch.requests,
                ServingError(
                    f"worker error serving tenant {tenant!r}: {error}", tenant=tenant
                ),
            )
            return
        if (self.config.nonfinite_output == "fail"
                and not np.isfinite(predictions).all()):
            self._metrics.record_nonfinite_batch()
            if breaker is not None and breaker.record_failure():
                self._metrics.record_breaker_open()
            self._serve_degraded(
                tenant, batch.requests,
                ServingError(
                    f"model for tenant {tenant!r} produced non-finite predictions",
                    tenant=tenant,
                ),
            )
            return
        if breaker is not None:
            breaker.record_success()
        self._fallback_ctx[tenant] = (
            tuple(predictions.shape[1:]), self._fallback_ctx[tenant][1]
        )
        for index, request in enumerate(batch.requests):
            self._settle_result(request, predictions[index])

    # ------------------------------------------------------------------ #
    # Degradation and retry (threaded-identical)
    # ------------------------------------------------------------------ #
    def _serve_degraded(self, tenant: str, requests: list, exc: BaseException) -> None:
        if self._serve_fallback(tenant, requests):
            return
        for request in requests:
            self._settle_error(request, exc)

    def _serve_fallback(self, tenant: str, requests: list) -> bool:
        fallback = self.pool.fallback_for(tenant)
        if fallback is None and self.config.fallback == "none":
            return False
        stacked = np.stack([request.window for request in requests])
        try:
            if fallback is not None:
                predictions = fallback.predict(
                    stacked, batch_size=self.config.predict_batch_size
                )
            else:
                ctx = self._fallback_ctx.get(tenant)
                if ctx is None:
                    return False
                out_shape, target_channel = ctx
                predictions = historical_average(stacked, out_shape, target_channel)
            if not np.isfinite(predictions).all():
                return False
        except BaseException:  # noqa: BLE001 - a broken fallback must not mask exc
            return False
        self._metrics.record_fallback(len(requests))
        for index, request in enumerate(requests):
            self._settle_result(request, predictions[index])
        return True

    def _retry_or_fail(self, batch: MicroBatch, exc: BaseException) -> None:
        retry = []
        for request in batch.requests:
            if request.settled or request.future.done():
                continue
            if request.attempts > self.config.max_retries:
                self._settle_error(request, exc)
            else:
                retry.append(request)
        if not retry:
            return
        if self._closed:
            for request in retry:
                self._settle_error(request, exc)
            return
        self._metrics.record_retry(len(retry))
        attempts = max(request.attempts for request in retry)
        backoff = min(
            self.config.retry_backoff_ms * (2 ** max(attempts - 1, 0)),
            self.config.retry_backoff_max_ms,
        ) / 1e3
        requeued = MicroBatch(
            tenant=batch.tenant, requests=retry, due_to_deadline=batch.due_to_deadline
        )
        with self._delayed_lock:
            self._delayed.append((time.monotonic() + backoff, requeued))

    # ------------------------------------------------------------------ #
    # Supervisor: dead/wedged worker *processes*
    # ------------------------------------------------------------------ #
    def _supervise_loop(self) -> None:
        while not self._supervisor_stop.wait(self.config.supervise_interval_s):
            try:
                self._supervise_once()
            except Exception:  # noqa: BLE001 - the supervisor must survive anything
                self.supervisor_errors += 1

    def _supervise_once(self) -> None:
        now = time.monotonic()
        due = []
        with self._delayed_lock:
            keep = []
            for due_at, batch in self._delayed:
                (due if due_at <= now else keep).append((due_at, batch))
            self._delayed[:] = keep
        for _, batch in due:
            self._queue.put(batch)
        if self._deadlines_used:
            for request in self._batcher.pop_expired(now):
                self._expire(request)
        for slot in self._workers:
            with slot.lock:
                process = slot.process
                alive = process is not None and process.is_alive()
                oldest = min(
                    (started for _, started in slot.inflight.values()), default=None
                )
            if (alive and oldest is not None
                    and now - oldest > self.config.wedge_timeout_s):
                # Processes, unlike threads, CAN be killed: terminate the
                # wedged worker and let the dead-worker pass requeue its
                # batches on the replacement.
                process.terminate()
                continue
            if not alive and not self._closed:
                self._restart_worker(slot)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, drain: bool = True, drain_timeout: float | None = None) -> None:
        """Stop the engine and unlink every shared-memory segment.

        Mirrors :meth:`ServingEngine.close`: ``drain=True`` answers
        everything accepted before failing the rest, ``drain_timeout``
        bounds the wait on worker processes (stragglers are terminated).
        After return no ``/dev/shm`` segment owned by this engine remains.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            with self._dispatch_lock:
                self._batcher.close()
            self._flusher.join()
            self._supervisor_stop.set()
            self._supervisor.join()
            closing_error = EngineClosed("engine closed before the batch was served")
            remainder = self._batcher.drain()
            with self._delayed_lock:
                delayed = [batch for _, batch in self._delayed]
                self._delayed.clear()
            if drain:
                for batch in remainder:
                    self._metrics.record_flush(len(batch), due_to_deadline=True)
                    self._queue.put(batch)
                for batch in delayed:
                    self._queue.put(batch)
            else:
                for batch in remainder + delayed:
                    self._fail_batch(batch, closing_error)
            for _ in self._workers:
                self._queue.put(_STOP)
            join_deadline = (
                None if drain_timeout is None
                else time.monotonic() + drain_timeout
            )

            def remaining(default: float | None = None) -> float | None:
                if join_deadline is None:
                    return default
                return max(join_deadline - time.monotonic(), 0.0)

            for slot in self._workers:
                slot.dispatcher.join(remaining())
            if any(slot.dispatcher.is_alive() for slot in self._workers):
                self._dispatch_abandon.set()
            # Dispatchers packed everything they could; workers may now
            # drain their rings and exit.
            for slot in self._workers:
                with slot.lock:
                    slot.requests.signal_stop()
                    slot.request_event.set()
            for slot in self._workers:
                slot.process.join(remaining())
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(1.0)
            # Settlers stop only after the workers exited, so every pushed
            # response is consumed before the final sweep below.
            self._settlers_stop.set()
            for slot in self._workers:
                slot.response_event.set()
            for slot in self._workers:
                slot.settler.join(remaining(default=5.0))
            for slot in self._workers:
                self._drain_responses(slot)
                with slot.lock:
                    leftovers = [batch for batch, _ in slot.inflight.values()]
                    slot.inflight.clear()
                for batch in leftovers:
                    self._fail_batch(batch, closing_error)
            # Nothing in the queue can be served anymore.
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _STOP:
                    self._fail_batch(item, closing_error)
            self._final_worker_metrics = self.worker_metrics.merged()
            self._teardown_shared_memory()
            if self._owns_pool:
                self.pool.close()

    def _teardown_shared_memory(self) -> None:
        for slot in self._workers:
            if slot.requests is not None:
                slot.requests.unlink()
            if slot.responses is not None:
                slot.responses.unlink()
        self.worker_metrics.unlink()
        self.plane.close()

    def segment_names(self) -> list[str]:
        """Every shared-memory segment this engine owns (for leak tests)."""
        names = list(self.plane.segment_names)
        names.append(self.worker_metrics.name)
        for slot in self._workers:
            if slot.requests is not None:
                names.append(slot.requests.name)
            if slot.responses is not None:
                names.append(slot.responses.name)
        return names

    def __enter__(self) -> "ProcessServingEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def metrics(self) -> dict:
        """Parent-side engine counters merged with per-worker shards.

        The ``workers`` key carries the cross-process merge (batches
        actually served, padding overhead, weight refreshes, worker-side
        predict latency percentiles, plus the raw per-worker rows).
        """
        snapshot = self._metrics.snapshot()
        if self._final_worker_metrics is not None:
            snapshot["workers"] = self._final_worker_metrics
        else:
            snapshot["workers"] = self.worker_metrics.merged()
        snapshot["workers"]["pinned_cpus"] = [
            slot.pinned_cpu for slot in self._workers
        ]
        return snapshot

    def health(self) -> dict:
        """Liveness summary including worker-process state and heartbeats."""
        now = time.monotonic()
        alive = 0
        wedged = 0
        heartbeats = []
        for slot in self._workers:
            with slot.lock:
                process = slot.process
                if process is not None and process.is_alive():
                    alive += 1
                if any(
                    now - started > self.config.wedge_timeout_s
                    for _, started in slot.inflight.values()
                ):
                    wedged += 1
            if self._final_worker_metrics is None:
                heartbeats.append(self.worker_metrics.read(slot.index)["heartbeat"])
        with self._breaker_lock:
            breakers = {
                tenant: breaker.snapshot()
                for tenant, breaker in self._breakers.items()
            }
        unhealthy_breakers = sum(
            1 for snapshot in breakers.values() if snapshot["state"] != "closed"
        )
        with self._delayed_lock:
            delayed = len(self._delayed)
        degraded = (
            alive < self.config.num_workers or wedged > 0 or unhealthy_breakers > 0
        )
        return {
            "status": "closed" if self._closed
            else ("degraded" if degraded else "ok"),
            "workers": {
                "configured": self.config.num_workers,
                "alive": alive,
                "wedged": wedged,
                "restarts": self._metrics.worker_restarts,
                "heartbeats": heartbeats,
            },
            "breakers": breakers,
            "pending": self._metrics.pending,
            "queued_batches": self._queue.qsize(),
            "delayed_batches": delayed,
            "supervisor_errors": self.supervisor_errors,
        }

    def stats(self) -> dict:
        """Metrics, pool, plane and batcher state in one dict."""
        return {
            "metrics": self.metrics(),
            "pool": self.pool.stats(),
            "program_cache": program_cache_stats(),
            "waiting_in_batcher": len(self._batcher),
            "closed": self._closed,
            "health": self.health(),
            "config": {
                "max_batch_size": self.config.max_batch_size,
                "max_delay_ms": self.config.max_delay_ms,
                "max_pending": self.config.max_pending,
                "num_workers": self.config.num_workers,
                "shards": self.config.shards,
                "shard_mode": self.config.shard_mode,
                "overload_policy": self.config.overload_policy,
                "max_retries": self.config.max_retries,
                "wedge_timeout_s": self.config.wedge_timeout_s,
                "breaker_failures": self.config.breaker_failures,
                "nan_policy": self.config.nan_policy,
                "fallback": self.config.fallback,
                "start_method": self.start_method,
                "ring_capacity": RING_CAPACITY,
            },
            "plane": {
                "nbytes": self.plane.nbytes(),
                "tenants": len(self._tenant_index),
                "buckets": list(self.plane.spec["meta"]["buckets"]),
                "segments": len(self.segment_names()),
            },
        }
