"""Shared-memory segments with array manifests and leak-proof lifecycle.

Every cross-process payload of the process-parallel serving engine — model
weights, CSR supports, scaler params, request/response rings, metrics
shards — lives in named ``multiprocessing.shared_memory`` segments.  This
module owns the three fiddly parts:

* **Manifests**: a segment packs many named arrays; ``layout_arrays``
  computes 64-byte-aligned offsets and ``view``/``attach_views`` map them
  back as zero-copy NumPy views (read-only by default — a worker can never
  scribble on the shared plane by accident).
* **Resource-tracker hygiene**: a child that merely *attaches* a segment
  must not let its ``resource_tracker`` unlink it at exit (that is the
  creator's job), so :func:`attach` unregisters the mapping.
* **Idempotent teardown**: :func:`unlink_quietly` swallows the
  already-gone case so *every* process can race to clean up — the engine
  on ``close()``, the supervisor after a worker crash, and orphaned
  workers after a parent death — without leaking ``/dev/shm`` entries or
  double-unlink errors.

Creator-side segments are additionally registered in a process-local
registry flushed by ``atexit`` as a last line of defence against abnormal
parent exits that skip ``close()``.
"""

from __future__ import annotations

import atexit
import itertools
import os
import secrets
import threading
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "ALIGN",
    "segment_name",
    "layout_arrays",
    "publish_arrays",
    "create_segment",
    "attach",
    "view",
    "attach_views",
    "close_quietly",
    "unlink_quietly",
]

ALIGN = 64

_SEQ = itertools.count()
_CREATED_LOCK = threading.Lock()
# name -> (segment, creator pid): a fork inherits the registry, so the
# atexit sweep must only unlink entries this very process created.
_CREATED: dict[str, tuple[shared_memory.SharedMemory, int]] = {}


def _align(nbytes: int) -> int:
    return (int(nbytes) + ALIGN - 1) // ALIGN * ALIGN


def segment_name(tag: str) -> str:
    """A collision-safe ``/dev/shm`` name carrying a greppable repro prefix."""
    return f"repro_{tag}_{os.getpid()}_{next(_SEQ)}_{secrets.token_hex(3)}"


def layout_arrays(arrays: dict) -> tuple[dict, int]:
    """Aligned offsets for a dict of arrays: ``{key: (offset, shape, dtype)}``.

    Returns the manifest and the total segment size (>= 1 byte: POSIX shm
    rejects empty segments).
    """
    manifest = {}
    offset = 0
    for key, array in arrays.items():
        array = np.ascontiguousarray(array)
        manifest[key] = (offset, array.shape, array.dtype.str)
        offset += _align(array.nbytes)
    return manifest, max(offset, 1)


def create_segment(nbytes: int, tag: str = "seg") -> shared_memory.SharedMemory:
    """Create (and register for atexit cleanup) one named segment."""
    shm = shared_memory.SharedMemory(
        name=segment_name(tag), create=True, size=max(int(nbytes), 1)
    )
    with _CREATED_LOCK:
        _CREATED[shm.name] = (shm, os.getpid())
    return shm


def publish_arrays(arrays: dict, tag: str = "plane") -> tuple[shared_memory.SharedMemory, dict]:
    """Copy ``arrays`` into one fresh segment; returns (segment, manifest)."""
    manifest, total = layout_arrays(arrays)
    shm = create_segment(total, tag=tag)
    for key, array in arrays.items():
        offset, shape, dtype = manifest[key]
        target = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        np.copyto(target, np.asarray(array, dtype=np.dtype(dtype)))
        del target  # drop the exported buffer so close() stays possible
    return shm, manifest


def attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting unlink responsibility.

    ``SharedMemory(name=...)`` re-registers the name with the resource
    tracker.  On POSIX every worker inherits the *parent's* tracker process
    (the fd travels through both fork and spawn), whose registry is a
    name-keyed set — so the attach-side registration is an idempotent no-op
    there, and ``unlink()`` (called exactly once per name: racing losers
    hit ``FileNotFoundError`` first) balances it.  Unregistering here would
    *unbalance* it and make the creator's unlink traceback inside the
    shared tracker.  As a bonus, a parent that dies without cleanup leaves
    the names registered, and the outliving tracker unlinks them at
    shutdown — a second safety net behind the workers' orphan sweep.
    """
    return shared_memory.SharedMemory(name=name)


def view(shm: shared_memory.SharedMemory, entry, writeable: bool = False) -> np.ndarray:
    """Zero-copy NumPy view of one manifest entry."""
    offset, shape, dtype = entry
    array = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
    array.flags.writeable = writeable
    return array


def attach_views(shm: shared_memory.SharedMemory, manifest: dict,
                 writeable: bool = False) -> dict:
    return {key: view(shm, entry, writeable=writeable) for key, entry in manifest.items()}


def close_quietly(shm: shared_memory.SharedMemory | None) -> None:
    """Drop this process's mapping; safe with live exported views around."""
    if shm is None:
        return
    try:
        shm.close()
    except BufferError:
        # NumPy views into shm.buf are still alive somewhere; the mapping
        # is reclaimed when they die (or at process exit).  Not a leak of
        # the named /dev/shm entry — that is unlink's job.
        pass
    except Exception:  # pragma: no cover - already closed
        pass


def unlink_quietly(shm: shared_memory.SharedMemory | str | None) -> None:
    """Remove the named segment, tolerating every already-gone race.

    Accepts a segment or a bare name so orphaned workers can unlink plane
    segments they only know by name.  Idempotent across processes: the
    loser of an unlink race sees ``FileNotFoundError`` and moves on.
    """
    if shm is None:
        return
    if isinstance(shm, str):
        try:
            handle = attach(shm)
        except FileNotFoundError:
            return
        close_quietly(handle)
        shm = handle
    with _CREATED_LOCK:
        _CREATED.pop(shm.name, None)
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except Exception:  # pragma: no cover - platform quirks
        pass


@atexit.register
def _cleanup_created() -> None:  # pragma: no cover - exit-path safety net
    pid = os.getpid()
    with _CREATED_LOCK:
        leftovers = [shm for shm, creator in _CREATED.values() if creator == pid]
        _CREATED.clear()
    for shm in leftovers:
        close_quietly(shm)
        try:
            shm.unlink()
        except Exception:
            pass
