"""The shared model plane: publish once, map everywhere, flip atomically.

:class:`ModelPlane` (parent side) publishes everything a worker process
needs to serve a :class:`~repro.serve.tenancy.ModelPool` into named
shared-memory segments:

* **one main segment** — the sensor network (adjacency/coordinates),
  per-tenant scaler statistics, and the serialized compiled predict
  programs (:mod:`repro.tensor.serialize`) whose CONST payloads carry the
  CSR diffusion supports/transposes — the heavyweight read-only bytes every
  worker maps zero-copy;
* **one weight segment per tenant** — a seqlock header (``seq``,
  ``active``, ``generation`` as int64) followed by *two* packed parameter
  blocks (A/B).  Readers bind the active block; the single writer (the
  parent's online-update lane) always writes the *inactive* block, flips
  ``active``, and bumps ``generation`` inside an odd/even ``seq`` bracket —
  so readers never block and never observe torn weights.

:class:`PlaneView` (worker side) attaches by name from the picklable
:attr:`ModelPlane.spec`, rebuilds each tenant's model from its registry
config, rebinds every parameter tensor to a read-only view of the active
block (zero copies), restores the scaler, and installs the compiled
structures so replicas replay without ever re-capturing.
"""

from __future__ import annotations

import time

import numpy as np

from ...exceptions import ConfigurationError
from ...graph import sparse as sparse_knobs
from ...graph.sensor_network import SensorNetwork
from ...models.registry import build_model, model_name_of
from ...tensor import (
    export_structures,
    get_default_dtype,
    install_structures,
)
from ...tensor.serialize import dump_structures, load_structures
from ..forecaster import Forecaster
from . import shm as shmlib

__all__ = ["ModelPlane", "PlaneView", "bucket_sizes", "pad_to_bucket"]

_CTRL_NBYTES = shmlib.ALIGN
_SEQ, _ACTIVE, _GENERATION = 0, 1, 2


def bucket_sizes(max_batch_size: int) -> tuple[int, ...]:
    """Power-of-two batch buckets up to (and including) ``max_batch_size``.

    Compiled programs are keyed on the input shape, so workers pad every
    micro-batch up to the next bucket — a handful of pre-captured shapes
    serve any batch size without per-size re-capture.
    """
    sizes = []
    b = 1
    while b < max_batch_size:
        sizes.append(b)
        b *= 2
    sizes.append(int(max_batch_size))
    return tuple(sizes)


def pad_to_bucket(windows: np.ndarray, buckets) -> tuple[np.ndarray, int]:
    """Pad a batch up to its bucket by repeating the last window.

    Per-window outputs are batch-content independent (every model op is
    per-sample), so filler rows change nothing about the first ``count``
    predictions; returns ``(padded, filler_count)``.
    """
    count = windows.shape[0]
    target = next((b for b in buckets if b >= count), count)
    if target == count:
        return windows, 0
    padded = np.empty((target,) + windows.shape[1:], dtype=windows.dtype)
    padded[:count] = windows
    padded[count:] = windows[count - 1]
    return padded, target - count


def _pack_params(model) -> tuple[list, int]:
    """Manifest [(name, offset, shape, dtype)] + aligned block size."""
    manifest = []
    offset = 0
    for name, param in model.named_parameters():
        data = param.data
        manifest.append((name, offset, tuple(data.shape), data.dtype.str))
        offset += (data.nbytes + shmlib.ALIGN - 1) // shmlib.ALIGN * shmlib.ALIGN
    return manifest, max(offset, shmlib.ALIGN)


def _split_scaler(scaler) -> dict:
    """Scaler type + params split into scalars / arrays / Nones for transport."""
    if scaler is None:
        return {"type": None, "scalars": {}, "none": [], "array_keys": []}
    params = scaler.get_params()
    scalars, none_keys, array_keys = {}, [], []
    for key, value in params.items():
        if value is None:
            none_keys.append(key)
        elif isinstance(value, np.ndarray):
            array_keys.append(key)
        else:
            scalars[key] = value
    return {
        "type": type(scaler).__name__,
        "scalars": scalars,
        "none": none_keys,
        "array_keys": array_keys,
    }


def _knobs() -> dict:
    return {
        "dtype": str(get_default_dtype()),
        "spatial_mode": sparse_knobs.get_spatial_mode(),
        "density_threshold": sparse_knobs.get_density_threshold(),
        "fused_spmm": sparse_knobs.get_fused_spmm(),
    }


class ModelPlane:
    """Parent-side owner of the shared segments and the weight-flip lane."""

    def __init__(self, spec, main, weight_segments):
        self.spec = spec
        self._main = main
        self._weights = weight_segments  # tenant -> SharedMemory
        self._ctrl = {
            tenant: np.ndarray(8, dtype=np.int64, buffer=seg.buf, offset=0)
            for tenant, seg in weight_segments.items()
        }
        self._param_views = {}  # (tenant, block) -> {name: writable view}

    # -------------------------------------------------------------- #
    @classmethod
    def publish(cls, pool, sample_windows=None, max_batch_size: int = 32) -> "ModelPlane":
        """Build and publish the plane for every resident tenant of ``pool``.

        Warms the compiled predict path at every bucket size first (one
        capture per architecture x bucket, shared across tenants), probes
        the output geometry, then freezes everything into shared memory.
        """
        tenants = list(pool.resident)
        if not tenants:
            raise ConfigurationError("the pool has no resident tenants to publish")
        network = pool.network
        reference = pool.forecaster(tenants[0]).model
        window_shape = (
            reference.input_steps, reference.network.num_nodes, reference.in_channels
        )
        for tenant in tenants:
            model = pool.forecaster(tenant).model
            dims = (model.input_steps, model.network.num_nodes, model.in_channels)
            if dims != window_shape:
                raise ConfigurationError(
                    "process-parallel serving preallocates fixed-shape rings; "
                    f"tenant {tenant!r} expects windows {dims}, "
                    f"tenant {tenants[0]!r} expects {window_shape}"
                )
        if sample_windows is None:
            sample = np.zeros((1,) + window_shape, dtype=float)
        else:
            sample = np.asarray(sample_windows, dtype=float)
            if sample.ndim == 3:
                sample = sample[None]
            if sample.shape[1:] != window_shape:
                raise ConfigurationError(
                    f"sample windows have shape {sample.shape[1:]}, "
                    f"models expect {window_shape}"
                )
        buckets = bucket_sizes(max_batch_size)

        # Warm the compiled cache at every bucket shape so the export below
        # carries a replayable program for everything workers will see.
        probe = None
        for tenant in tenants:
            forecaster = pool.forecaster(tenant)
            for bucket in buckets:
                batch = np.repeat(sample[:1], bucket, axis=0)
                out = forecaster.predict(batch, batch_size=bucket)
            if probe is None:
                probe = out[:1]
        out_shape = tuple(probe.shape[1:])
        out_dtype = probe.dtype.str

        portable = [
            (fingerprint, structure)
            for fingerprint, structure in export_structures()
            if not structure.differentiable and not structure.backward_order
        ]
        blob, table = dump_structures(portable)

        arrays = {"network/adjacency": network.adjacency}
        if network.coordinates is not None:
            arrays["network/coordinates"] = network.coordinates
        meta_models = {}
        for tenant in tenants:
            forecaster = pool.forecaster(tenant)
            scaler_meta = _split_scaler(forecaster.scaler)
            for key in scaler_meta["array_keys"]:
                arrays[f"scaler/{tenant}/{key}"] = forecaster.scaler.get_params()[key]
            meta_models[tenant] = {
                "model": model_name_of(forecaster.model),
                "config": forecaster.model.to_config(),
                "scaler": scaler_meta,
                "target_channel": int(getattr(forecaster, "target_channel", 0)),
            }
        arrays["structs/blob"] = np.frombuffer(blob, dtype=np.uint8)
        for index, array in enumerate(table):
            arrays[f"structs/arr{index}"] = array
        main, manifest = shmlib.publish_arrays(arrays, tag="plane")

        weight_segments = {}
        weights_spec = {}
        for tenant in tenants:
            model = pool.forecaster(tenant).model
            params_manifest, block = _pack_params(model)
            segment = shmlib.create_segment(_CTRL_NBYTES + 2 * block, tag="weights")
            ctrl = np.ndarray(8, dtype=np.int64, buffer=segment.buf, offset=0)
            ctrl[:] = 0
            named = dict(model.named_parameters())
            for block_index in (0, 1):
                for name, offset, shape, dtype in params_manifest:
                    target = np.ndarray(
                        shape, dtype=np.dtype(dtype), buffer=segment.buf,
                        offset=_CTRL_NBYTES + block_index * block + offset,
                    )
                    np.copyto(target, named[name].data)
                    del target
            del ctrl
            weight_segments[tenant] = segment
            weights_spec[tenant] = {
                "name": segment.name,
                "params": params_manifest,
                "block": block,
            }

        spec = {
            "main": (main.name, manifest),
            "weights": weights_spec,
            "meta": {
                "tenants": tenants,
                "models": meta_models,
                "network": {"name": network.name, "directed": bool(network.directed)},
                "window_shape": window_shape,
                "window_dtype": sample.dtype.str,
                "out_shape": out_shape,
                "out_dtype": out_dtype,
                "buckets": buckets,
                "knobs": _knobs(),
                "num_struct_arrays": len(table),
            },
        }
        return cls(spec, main, weight_segments)

    # -------------------------------------------------------------- #
    # Single-writer update lane
    # -------------------------------------------------------------- #
    def publish_weights(self, tenant: str, model) -> int:
        """Seqlock flip: write the inactive block, swap, bump generation.

        The caller is the *only* writer (the engine serializes updates
        under its update lock), so the odd/even ``seq`` bracket is all the
        synchronization readers need: an odd ``seq`` or a ``seq`` change
        across a read means "retry", a stable even ``seq`` means the active
        block was immutable for the whole read.
        """
        ctrl = self._ctrl[tenant]
        seq = int(ctrl[_SEQ])
        ctrl[_SEQ] = seq + 1  # odd: a flip is in progress
        inactive = 1 - int(ctrl[_ACTIVE])
        views = self._writable_views(tenant, inactive)
        for name, param in model.named_parameters():
            np.copyto(views[name], param.data)
        ctrl[_ACTIVE] = inactive
        ctrl[_GENERATION] += 1
        ctrl[_SEQ] = seq + 2  # even again: flip visible and complete
        return int(ctrl[_GENERATION])

    def generation(self, tenant: str) -> int:
        return int(self._ctrl[tenant][_GENERATION])

    def _writable_views(self, tenant: str, block_index: int) -> dict:
        key = (tenant, block_index)
        views = self._param_views.get(key)
        if views is None:
            info = self.spec["weights"][tenant]
            segment = self._weights[tenant]
            views = {
                name: np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=segment.buf,
                    offset=_CTRL_NBYTES + block_index * info["block"] + offset,
                )
                for name, offset, shape, dtype in info["params"]
            }
            self._param_views[key] = views
        return views

    # -------------------------------------------------------------- #
    @property
    def segment_names(self) -> list[str]:
        return [self.spec["main"][0]] + [
            info["name"] for info in self.spec["weights"].values()
        ]

    def nbytes(self) -> int:
        total = self._main.size
        for segment in self._weights.values():
            total += segment.size
        return total

    def close(self) -> None:
        """Unlink every plane segment (idempotent)."""
        self._param_views.clear()
        self._ctrl = {}
        for segment in self._weights.values():
            shmlib.close_quietly(segment)
            shmlib.unlink_quietly(segment)
        self._weights = {}
        if self._main is not None:
            shmlib.close_quietly(self._main)
            shmlib.unlink_quietly(self._main)
            self._main = None


class PlaneView:
    """Worker-side zero-copy mapping of a published plane."""

    def __init__(self, spec):
        self.spec = spec
        self.meta = spec["meta"]
        main_name, manifest = spec["main"]
        self._main = shmlib.attach(main_name)
        self._views = shmlib.attach_views(self._main, manifest)
        self._weights = {
            tenant: shmlib.attach(info["name"])
            for tenant, info in spec["weights"].items()
        }
        self._ctrl = {
            tenant: np.ndarray(8, dtype=np.int64, buffer=seg.buf, offset=0)
            for tenant, seg in self._weights.items()
        }
        self._param_views = {}

    @property
    def tenants(self) -> list[str]:
        return list(self.meta["tenants"])

    # -------------------------------------------------------------- #
    def apply_knobs(self) -> None:
        """Match the publisher's dtype + sparse knobs (fingerprint parity)."""
        from ...tensor import set_default_dtype

        knobs = self.meta["knobs"]
        set_default_dtype(knobs["dtype"])
        sparse_knobs.set_spatial_mode(knobs["spatial_mode"])
        sparse_knobs.set_density_threshold(knobs["density_threshold"])
        sparse_knobs.set_fused_spmm(knobs["fused_spmm"])

    def build_network(self) -> SensorNetwork:
        meta = self.meta["network"]
        coordinates = self._views.get("network/coordinates")
        return SensorNetwork(
            adjacency=np.array(self._views["network/adjacency"]),
            coordinates=None if coordinates is None else np.array(coordinates),
            name=meta["name"],
            directed=meta["directed"],
        )

    def install_structures(self) -> int:
        """Load the serialized predict programs, CSR payloads zero-copy."""
        blob = bytes(self._views["structs/blob"])
        table = [
            self._views[f"structs/arr{index}"]
            for index in range(self.meta["num_struct_arrays"])
        ]
        return install_structures(load_structures(blob, table))

    def build_forecaster(self, tenant: str, network: SensorNetwork) -> tuple:
        """Rebuild one tenant zero-copy: returns ``(forecaster, generation)``."""
        from ...data.scalers import build_scaler

        entry = self.meta["models"][tenant]
        model = build_model(entry["model"], entry["config"], network=network, rng=0)
        model.eval()
        generation = self.bind_weights(tenant, model)
        scaler_meta = entry["scaler"]
        scaler = None
        if scaler_meta["type"] is not None:
            params = dict(scaler_meta["scalars"])
            for key in scaler_meta["none"]:
                params[key] = None
            for key in scaler_meta["array_keys"]:
                params[key] = np.array(self._views[f"scaler/{tenant}/{key}"])
            scaler = build_scaler(scaler_meta["type"], params)
        forecaster = Forecaster(
            model, scaler=scaler, target_channel=entry["target_channel"]
        )
        return forecaster, generation

    # -------------------------------------------------------------- #
    # Seqlock readers
    # -------------------------------------------------------------- #
    def generation(self, tenant: str) -> int:
        return int(self._ctrl[tenant][_GENERATION])

    def bind_weights(self, tenant: str, model) -> int:
        """Point every parameter at a read-only view of the active block."""
        ctrl = self._ctrl[tenant]
        while True:
            seq = int(ctrl[_SEQ])
            if seq % 2 == 0:
                active = int(ctrl[_ACTIVE])
                generation = int(ctrl[_GENERATION])
                if int(ctrl[_SEQ]) == seq:
                    break
            time.sleep(0.0002)
        views = self._read_views(tenant, active)
        for name, param in model.named_parameters():
            view = views.get(name)
            if view is None or view.shape != param.data.shape:
                raise ConfigurationError(
                    f"published weights for tenant {tenant!r} do not match "
                    f"parameter {name!r}"
                )
            param.data = view
        return generation

    def read_weights(self, tenant: str, out: dict) -> int:
        """Copy a torn-free snapshot of the active block into ``out``."""
        ctrl = self._ctrl[tenant]
        while True:
            seq = int(ctrl[_SEQ])
            if seq % 2 == 0:
                active = int(ctrl[_ACTIVE])
                generation = int(ctrl[_GENERATION])
                views = self._read_views(tenant, active)
                for name, target in out.items():
                    np.copyto(target, views[name])
                if int(ctrl[_SEQ]) == seq:
                    return generation
            time.sleep(0.0002)

    def _read_views(self, tenant: str, block_index: int) -> dict:
        key = (tenant, block_index)
        views = self._param_views.get(key)
        if views is None:
            info = self.spec["weights"][tenant]
            segment = self._weights[tenant]
            views = {}
            for name, offset, shape, dtype in info["params"]:
                view = np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=segment.buf,
                    offset=_CTRL_NBYTES + block_index * info["block"] + offset,
                )
                view.flags.writeable = False
                views[name] = view
            self._param_views[key] = views
        return views

    # -------------------------------------------------------------- #
    def segment_names(self) -> list[str]:
        return [self.spec["main"][0]] + [
            info["name"] for info in self.spec["weights"].values()
        ]

    def close(self) -> None:
        self._param_views.clear()
        self._views = {}
        self._ctrl = {}
        shmlib.close_quietly(self._main)
        for segment in self._weights.values():
            shmlib.close_quietly(segment)

    def unlink_all(self) -> None:
        """Orphan cleanup: remove every plane segment (parent died)."""
        self.close()
        for name in self.segment_names():
            shmlib.unlink_quietly(name)
