"""Result containers shared by the continual trainer and the strategies."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .metrics import PredictionMetrics


def _nan_aware_mean(values: list[float]) -> float:
    """Mean over non-NaN entries; NaN only when *every* entry is NaN.

    Used for MAPE only: there NaN means "metric undefined on a degenerate
    set" and must not poison the cross-set average.  MAE/RMSE keep plain
    means — a NaN there signals diverged training and must stay visible.
    """
    finite = [value for value in values if not math.isnan(value)]
    if not finite:
        return float("nan")
    return sum(finite) / len(finite)

__all__ = ["SetResult", "ContinualResult"]


@dataclass
class SetResult:
    """Outcome of processing one stream period (Bset or an incremental set)."""

    name: str
    metrics: PredictionMetrics
    epochs: int = 0
    train_seconds: float = 0.0
    loss_history: list[float] = field(default_factory=list)
    inference_seconds_per_window: float = 0.0

    @property
    def train_seconds_per_epoch(self) -> float:
        return self.train_seconds / self.epochs if self.epochs else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "mae": self.metrics.mae,
            "rmse": self.metrics.rmse,
            "mape": self.metrics.mape,
            "epochs": self.epochs,
            "train_seconds": self.train_seconds,
            "inference_seconds_per_window": self.inference_seconds_per_window,
        }

    def to_state(self) -> dict:
        """Lossless form (unlike :meth:`as_dict`, keeps the loss history)."""
        return {
            "name": self.name,
            "metrics": self.metrics.as_dict(),
            "epochs": self.epochs,
            "train_seconds": self.train_seconds,
            "loss_history": list(self.loss_history),
            "inference_seconds_per_window": self.inference_seconds_per_window,
        }

    @classmethod
    def from_state(cls, state: dict) -> "SetResult":
        return cls(
            name=state["name"],
            metrics=PredictionMetrics.from_dict(state["metrics"]),
            epochs=int(state.get("epochs", 0)),
            train_seconds=float(state.get("train_seconds", 0.0)),
            # JSON has no NaN: non-finite losses (a diverged epoch) are stored
            # as null and must come back as NaN, not crash the resume.
            loss_history=[
                float("nan") if value is None else float(value)
                for value in state.get("loss_history", [])
            ],
            inference_seconds_per_window=float(state.get("inference_seconds_per_window", 0.0)),
        )


@dataclass
class ContinualResult:
    """Results of one method over the whole streaming scenario."""

    method: str
    dataset: str
    sets: list[SetResult] = field(default_factory=list)

    def add(self, result: SetResult) -> None:
        self.sets.append(result)

    def metrics_by_set(self) -> dict[str, PredictionMetrics]:
        return {entry.name: entry.metrics for entry in self.sets}

    def mae_by_set(self) -> dict[str, float]:
        return {entry.name: entry.metrics.mae for entry in self.sets}

    def rmse_by_set(self) -> dict[str, float]:
        return {entry.name: entry.metrics.rmse for entry in self.sets}

    def mean_mae(self) -> float:
        return sum(entry.metrics.mae for entry in self.sets) / max(len(self.sets), 1)

    def mean_rmse(self) -> float:
        return sum(entry.metrics.rmse for entry in self.sets) / max(len(self.sets), 1)

    def mean_mape(self) -> float:
        """NaN-aware mean MAPE (sets with undefined MAPE are skipped)."""
        return _nan_aware_mean([entry.metrics.mape for entry in self.sets])

    def loss_curve(self) -> list[float]:
        """Concatenated training-loss history across all sets (Fig. 8)."""
        curve: list[float] = []
        for entry in self.sets:
            curve.extend(entry.loss_history)
        return curve

    def mean_train_seconds_per_epoch(self, incremental_only: bool = False) -> float:
        entries = self.sets[1:] if incremental_only else self.sets
        entries = [entry for entry in entries if entry.epochs > 0]
        if not entries:
            return 0.0
        return sum(entry.train_seconds_per_epoch for entry in entries) / len(entries)

    def mean_inference_seconds(self, incremental_only: bool = False) -> float:
        entries = self.sets[1:] if incremental_only else self.sets
        if not entries:
            return 0.0
        return sum(entry.inference_seconds_per_window for entry in entries) / len(entries)

    def as_dict(self) -> dict:
        return {
            "method": self.method,
            "dataset": self.dataset,
            "sets": [entry.as_dict() for entry in self.sets],
        }

    def to_state(self) -> dict:
        """Lossless form used by trainer checkpoints (resumable progress)."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "sets": [entry.to_state() for entry in self.sets],
        }

    @classmethod
    def from_state(cls, state: dict) -> "ContinualResult":
        return cls(
            method=state["method"],
            dataset=state["dataset"],
            sets=[SetResult.from_state(entry) for entry in state.get("sets", [])],
        )
