"""The URCL model: data integration + STCRL + STPrediction (Sec. IV, Fig. 1).

:class:`URCLModel` wires together every component of the framework around a
pluggable autoencoder backbone:

* a replay buffer with RMIR sampling (data integration, Sec. IV-B.1),
* STMixup fusion of current and replayed observations (Sec. IV-B.2),
* the five spatio-temporal augmentations + STSimSiam branch with the
  GraphCL loss (STCRL, Sec. IV-C),
* the shared STEncoder / STDecoder prediction path (STPrediction, Sec. IV-D),
* the combined objective ``L_task + L_ssl`` (Eq. 28–29).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..augmentation.base import AugmentedSample
from ..augmentation.pipeline import AugmentationPipeline
from ..exceptions import ConfigurationError
from ..graph.sensor_network import SensorNetwork
from ..nn.losses import mae_loss
from ..nn.module import Module
from ..replay.buffer import ReplayBuffer
from ..replay.mixup import STMixup
from ..replay.sampling import RandomSampler, RMIRSampler
from ..models.base import AutoencoderBackbone
from ..models.registry import build_model, register
from ..models.stsimsiam import STSimSiam
from ..tensor import Tensor, get_default_dtype, run_compiled
from ..utils.random import get_rng, spawn_rng
from .config import URCLConfig

__all__ = ["StepOutput", "URCLModel", "build_backbone"]


def build_backbone(
    name: str,
    network: SensorNetwork,
    in_channels: int,
    input_steps: int,
    output_steps: int,
    out_channels: int,
    config: URCLConfig,
    rng=None,
) -> AutoencoderBackbone:
    """Instantiate one of the supported autoencoder backbones by name.

    Construction is routed through the model registry: the URCL-level
    hyper-parameters are translated into the backbone's declarative config
    and handed to :func:`repro.models.build_model`.
    """
    rng = get_rng(rng)
    shapes = {
        "in_channels": in_channels,
        "input_steps": input_steps,
        "output_steps": output_steps,
        "out_channels": out_channels,
    }
    if name == "graphwavenet":
        extra = {
            "encoder_config": config.encoder,
            "decoder_hidden": config.decoder_hidden,
        }
    elif name in ("dcrnn", "geoman"):
        extra = {
            "hidden_dim": config.backbone_hidden,
            "latent_dim": config.backbone_latent,
            "decoder_hidden": config.decoder_hidden,
        }
    else:
        raise ConfigurationError(f"unknown backbone {name!r}")
    return build_model(name, {**shapes, **extra}, network=network, rng=rng)


@dataclass
class StepOutput:
    """Losses produced by one URCL training step."""

    total_loss: Tensor
    task_loss: float
    ssl_loss: float
    mixup_lambda: float
    replay_samples: int


@register("urcl")
class URCLModel(Module):
    """Unified replay-based continual learner for spatio-temporal prediction.

    Parameters
    ----------
    network:
        Sensor network shared by every stream period.
    in_channels, input_steps, output_steps, out_channels:
        Observation and prediction shapes (Table I).
    config:
        Framework hyper-parameters and ablation switches.
    rng:
        Seed or generator controlling every stochastic component.
    """

    def __init__(
        self,
        network: SensorNetwork,
        in_channels: int,
        input_steps: int = 12,
        output_steps: int = 1,
        out_channels: int = 1,
        config: URCLConfig | None = None,
        rng=None,
    ):
        super().__init__()
        self.config = config or URCLConfig()
        self.network = network
        self.in_channels = in_channels
        self.input_steps = input_steps
        self.output_steps = output_steps
        self.out_channels = out_channels
        rng = get_rng(rng)

        self.backbone = build_backbone(
            self.config.backbone,
            network,
            in_channels=in_channels,
            input_steps=input_steps,
            output_steps=output_steps,
            out_channels=out_channels,
            config=self.config,
            rng=rng,
        )
        self.simsiam = STSimSiam(
            self.backbone.encoder,
            latent_dim=self.backbone.latent_dim,
            projection_hidden=self.config.projection_hidden,
            temperature=self.config.temperature,
            rng=rng,
        )
        self.buffer = ReplayBuffer(self.config.buffer_capacity, rng=spawn_rng(rng))
        self.mixup = STMixup(alpha=self.config.mixup_alpha, rng=spawn_rng(rng))
        if self.config.use_rmir:
            self.sampler = RMIRSampler(
                virtual_lr=self.config.rmir_virtual_lr,
                candidate_pool=self.config.rmir_candidate_pool,
                rng=spawn_rng(rng),
            )
        else:
            self.sampler = RandomSampler(rng=spawn_rng(rng))
        self.augmentations = AugmentationPipeline(rng=spawn_rng(rng))

    # ------------------------------------------------------------------ #
    # Declarative construction (model registry)
    # ------------------------------------------------------------------ #
    def to_config(self) -> dict:
        """Declarative description: observation shapes + framework config."""
        return {
            "in_channels": self.in_channels,
            "input_steps": self.input_steps,
            "output_steps": self.output_steps,
            "out_channels": self.out_channels,
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_config(cls, config: dict, network: SensorNetwork | None = None, rng=None) -> "URCLModel":
        """Rebuild the full framework from a :meth:`to_config` dict."""
        if network is None:
            raise ConfigurationError("URCLModel.from_config requires a sensor network")
        config = dict(config)
        urcl_config = config.pop("config", None)
        if urcl_config is not None:
            urcl_config = URCLConfig.from_dict(urcl_config)
        return cls(network, config=urcl_config, rng=rng, **config)

    # ------------------------------------------------------------------ #
    # Prediction path
    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor, graph=None) -> Tensor:
        """Predict future observations from an input window.

        ``graph`` optionally overrides the sensor graph for this call (a
        :class:`repro.graph.Graph`, e.g. an updated road network at serving
        time); the backbone pulls diffusion supports from it instead of the
        construction-time network.
        """
        return self.backbone(x, graph=graph)

    def predict(self, inputs: np.ndarray, graph=None) -> np.ndarray:
        """Numpy-in / numpy-out inference (optionally on an overridden graph)."""
        return self.backbone.predict(inputs, graph=graph)

    # ------------------------------------------------------------------ #
    # Data integration (Sec. IV-B)
    # ------------------------------------------------------------------ #
    def integrate(
        self, inputs: np.ndarray, targets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        """Fuse the current batch with replayed observations.

        Returns the integrated ``(inputs, targets)``, the mixup coefficient
        actually used and the number of replayed windows.
        """
        if not self.config.use_replay or self.buffer.is_empty:
            dtype = get_default_dtype()
            return np.asarray(inputs, dtype), np.asarray(targets, dtype), 1.0, 0
        replay_inputs, replay_targets = self.sampler.sample(
            self.buffer,
            inputs,
            targets,
            sample_size=self.config.replay_sample_size,
            model=self.backbone,
            loss_fn=mae_loss,
        )
        if self.config.use_mixup:
            result = self.mixup(inputs, targets, replay_inputs, replay_targets)
            return result.inputs, result.targets, result.lam, replay_inputs.shape[0]
        # w/o STMixup ablation: simply concatenate current and replayed windows.
        merged_inputs = np.concatenate([inputs, replay_inputs], axis=0)
        merged_targets = np.concatenate([targets, replay_targets], axis=0)
        return merged_inputs, merged_targets, 1.0, replay_inputs.shape[0]

    # ------------------------------------------------------------------ #
    # STCRL (Sec. IV-C)
    # ------------------------------------------------------------------ #
    def contrastive_loss(self, mixed_inputs: np.ndarray, graph=None) -> Tensor:
        """GraphCL loss over two augmented views of the integrated batch.

        The sensor graph flows through as a first-class
        :class:`repro.graph.Graph`: augmentations emit CSR deltas against
        it (never dense adjacency copies) and the encoder pulls cached
        supports straight from the perturbed graphs.
        """
        graph = graph if graph is not None else self.network.graph
        if self.config.use_augmentation:
            first, second = self.augmentations(mixed_inputs, graph)
        else:
            # w/o STA ablation: both branches see the raw integrated sample
            # over the unperturbed (shared, support-cached) graph.
            first = AugmentedSample(
                observations=mixed_inputs.copy(),
                graph=graph,
                description="identity",
            )
            second = AugmentedSample(
                observations=mixed_inputs.copy(),
                graph=graph,
                description="identity",
            )
        return self.simsiam.loss(first, second)

    # ------------------------------------------------------------------ #
    # Full training step (Alg. 1, lines 5-11)
    # ------------------------------------------------------------------ #
    def training_step(
        self, inputs: np.ndarray, targets: np.ndarray, set_name: str = "", graph=None
    ) -> StepOutput:
        """Run one step of Algorithm 1 and return the combined loss.

        The caller is responsible for ``zero_grad`` / ``backward`` /
        optimizer stepping so that the step integrates with any optimizer.
        ``graph`` optionally overrides the sensor graph for the whole step
        (prediction and contrastive branches alike).
        """
        dtype = get_default_dtype()
        inputs = np.asarray(inputs, dtype=dtype)
        targets = np.asarray(targets, dtype=dtype)
        mixed_inputs, mixed_targets, lam, replayed = self.integrate(inputs, targets)

        forward = lambda t: self.backbone(t, graph=graph)  # noqa: E731
        predictions = run_compiled(
            self.backbone, forward, Tensor(mixed_inputs), graph=graph, kind="train"
        )
        task_loss = mae_loss(predictions, Tensor(mixed_targets))
        if self.config.joint_current_loss and replayed > 0 and self.config.use_mixup:
            current_predictions = run_compiled(
                self.backbone, forward, Tensor(inputs), graph=graph, kind="train"
            )
            current_loss = mae_loss(current_predictions, Tensor(targets))
            task_loss = (task_loss + current_loss) * 0.5

        if self.config.use_graphcl and self.config.ssl_weight > 0:
            ssl_loss = self.contrastive_loss(mixed_inputs, graph=graph)
            total = task_loss + ssl_loss * self.config.ssl_weight
            ssl_value = float(ssl_loss.item())
        else:
            total = task_loss
            ssl_value = 0.0

        # Store the *original* (pre-mixup) observations for future replay.
        if self.config.use_replay:
            self.buffer.add_batch(inputs, targets, set_name=set_name)

        return StepOutput(
            total_loss=total,
            task_loss=float(task_loss.item()),
            ssl_loss=ssl_value,
            mixup_lambda=lam,
            replay_samples=replayed,
        )
