"""Packing live training state into :class:`repro.utils.checkpoint.Checkpoint`.

The bundle layout is shared by the two producers — the continual trainer
(``ContinualTrainer.save_checkpoint``) and the serving facade
(``Forecaster.save``) — so either side can open the other's artifacts:

=============  =====================================================
meta key       contents
=============  =====================================================
``dtype``      library default dtype active when the state was saved
``model``      ``{"name": registry key, "config": to_config()}``
``optimizer``  optimizer class name + scalar hyper-parameters
``scaler``     scaler class name + scalar params (arrays in ``scaler/``)
``network``    sensor-network metadata (arrays in ``network/``)
``buffer``     replay-buffer bookkeeping (arrays in ``buffer/``)
``rng``        ``{root: {path: bit-generator state}}``
=============  =====================================================

Every helper below is a pure function over a :class:`Checkpoint`; nothing
here touches the filesystem.
"""

from __future__ import annotations

import numpy as np

from ..data.scalers import Scaler, build_scaler
from ..exceptions import ConfigurationError
from ..graph.sensor_network import SensorNetwork
from ..models.registry import build_model, model_name_of
from ..nn import optim as optim_module
from ..tensor import get_default_dtype, set_default_dtype
from ..utils.checkpoint import Checkpoint
from ..utils.random import collect_rng_states, restore_rng_states

__all__ = [
    "pack_dtype",
    "apply_dtype",
    "pack_model",
    "unpack_model",
    "pack_optimizer",
    "unpack_optimizer",
    "make_optimizer",
    "pack_scaler",
    "unpack_scaler",
    "pack_network",
    "unpack_network",
    "pack_buffer",
    "unpack_buffer",
    "pack_rng",
    "unpack_rng",
]


# ---------------------------------------------------------------------- #
# Library dtype
# ---------------------------------------------------------------------- #
def pack_dtype(checkpoint: Checkpoint) -> None:
    checkpoint.meta["dtype"] = np.dtype(get_default_dtype()).name


def apply_dtype(checkpoint: Checkpoint) -> None:
    """Switch the library to the checkpoint's dtype (call before rebuilding)."""
    dtype = checkpoint.meta.get("dtype")
    if dtype is not None:
        set_default_dtype(dtype)


# ---------------------------------------------------------------------- #
# Model (architecture config + parameters)
# ---------------------------------------------------------------------- #
def pack_model(checkpoint: Checkpoint, model) -> None:
    checkpoint.meta["model"] = {
        "name": model_name_of(model),
        "config": model.to_config(),
    }
    checkpoint.add_arrays("model", model.state_dict())


def unpack_model(checkpoint: Checkpoint, network: SensorNetwork | None = None, rng=0):
    """Rebuild the saved architecture and load its parameters.

    ``rng`` only seeds construction-time draws, which the subsequent
    ``load_state_dict`` overwrites — any value yields identical models.
    """
    entry = checkpoint.meta.get("model")
    if entry is None:
        raise ConfigurationError("checkpoint has no model section")
    model = build_model(entry["name"], entry.get("config"), network=network, rng=rng)
    state = checkpoint.arrays_in("model")
    if state:
        model.load_state_dict(state)
    elif getattr(model, "parameters", None) is not None and model.parameters():
        # A parametric model without its arrays would serve random weights.
        raise ConfigurationError(
            "checkpoint metadata describes a model but its parameter arrays "
            "are missing (arrays.npz lost or partially copied?)"
        )
    return model


# ---------------------------------------------------------------------- #
# Optimizer
# ---------------------------------------------------------------------- #
def pack_optimizer(checkpoint: Checkpoint, optimizer) -> None:
    """Split ``optimizer.state_dict()`` into scalar meta + slot arrays."""
    scalars: dict = {}
    for key, value in optimizer.state_dict().items():
        if isinstance(value, list):
            checkpoint.add_arrays(
                "optim", {f"{key}/{index}": slot for index, slot in enumerate(value)}
            )
        elif isinstance(value, tuple):
            scalars[key] = list(value)
        else:
            scalars[key] = value
    checkpoint.meta["optimizer"] = {"type": type(optimizer).__name__, "state": scalars}


def unpack_optimizer(checkpoint: Checkpoint, optimizer) -> None:
    """Restore slot variables and hyper-parameters into ``optimizer``."""
    entry = checkpoint.meta.get("optimizer")
    if entry is None:
        return
    expected = entry.get("type")
    if expected is not None and expected != type(optimizer).__name__:
        raise ConfigurationError(
            f"checkpoint stores {expected} state but the trainer uses "
            f"{type(optimizer).__name__}"
        )
    state: dict = dict(entry.get("state", {}))
    slots: dict[str, dict[int, np.ndarray]] = {}
    for key, value in checkpoint.arrays_in("optim").items():
        name, _, index = key.rpartition("/")
        slots.setdefault(name, {})[int(index)] = value
    for name, indexed in slots.items():
        state[name] = [indexed[index] for index in sorted(indexed)]
    optimizer.load_state_dict(state)


def make_optimizer(name: str, parameters, **kwargs):
    """Instantiate an optimizer class from :mod:`repro.nn.optim` by name."""
    cls = getattr(optim_module, name, None)
    if cls is None or not isinstance(cls, type) or not issubclass(cls, optim_module.Optimizer):
        raise ConfigurationError(f"unknown optimizer {name!r}")
    return cls(parameters, **kwargs)


# ---------------------------------------------------------------------- #
# Scaler
# ---------------------------------------------------------------------- #
def pack_scaler(checkpoint: Checkpoint, scaler: Scaler) -> None:
    scalars: dict = {}
    arrays: dict[str, np.ndarray] = {}
    none_keys: list[str] = []
    for key, value in scaler.get_params().items():
        if value is None:
            none_keys.append(key)
        elif isinstance(value, np.ndarray):
            arrays[key] = value
        else:
            scalars[key] = value
    checkpoint.meta["scaler"] = {
        "type": type(scaler).__name__,
        "scalars": scalars,
        "none_keys": none_keys,
    }
    checkpoint.add_arrays("scaler", arrays)


def unpack_scaler(checkpoint: Checkpoint) -> Scaler | None:
    entry = checkpoint.meta.get("scaler")
    if entry is None:
        return None
    params: dict = dict(entry.get("scalars", {}))
    params.update({key: None for key in entry.get("none_keys", [])})
    params.update(checkpoint.arrays_in("scaler"))
    return build_scaler(entry["type"], params)


# ---------------------------------------------------------------------- #
# Sensor network
# ---------------------------------------------------------------------- #
def pack_network(checkpoint: Checkpoint, network: SensorNetwork) -> None:
    checkpoint.meta["network"] = {"name": network.name, "directed": network.directed}
    arrays = {"adjacency": network.adjacency}
    if network.coordinates is not None:
        arrays["coordinates"] = network.coordinates
    checkpoint.add_arrays("network", arrays)


def unpack_network(
    checkpoint: Checkpoint, shared: SensorNetwork | None = None
) -> SensorNetwork | None:
    """Rebuild the stored sensor network, or adopt a ``shared`` one.

    ``shared`` is the multi-tenant path: per-tenant checkpoints carry their
    own copy of the (identical) adjacency, but rebuilding a fresh
    ``SensorNetwork`` per tenant would also rebuild a fresh ``Graph`` —
    and with it a fresh set of diffusion supports.  Passing the pool's
    shared network instead makes every tenant's model attach to the *same*
    graph object; the stored adjacency is validated against it so a tenant
    trained on a different network fails loudly instead of serving on the
    wrong graph.
    """
    entry = checkpoint.meta.get("network")
    if entry is None:
        return shared
    arrays = checkpoint.arrays_in("network")
    if "adjacency" not in arrays:
        raise ConfigurationError("checkpoint network section is missing the adjacency")
    if shared is not None:
        stored = arrays["adjacency"]
        if stored.shape != shared.adjacency.shape or not np.array_equal(
            stored, shared.adjacency
        ):
            raise ConfigurationError(
                "checkpoint was trained on a different sensor network than the "
                "shared one (adjacency mismatch); multi-tenant serving requires "
                "all tenants to share one graph"
            )
        return shared
    return SensorNetwork(
        adjacency=arrays["adjacency"],
        coordinates=arrays.get("coordinates"),
        name=entry.get("name", "sensor-network"),
        directed=bool(entry.get("directed", False)),
    )


# ---------------------------------------------------------------------- #
# Replay buffer
# ---------------------------------------------------------------------- #
def pack_buffer(checkpoint: Checkpoint, buffer) -> None:
    state = buffer.state_dict()
    arrays = {}
    for key in ("inputs", "targets"):
        value = state.pop(key)
        if value is not None:
            arrays[key] = value
    checkpoint.meta["buffer"] = state
    checkpoint.add_arrays("buffer", arrays)


def unpack_buffer(checkpoint: Checkpoint, buffer) -> None:
    entry = checkpoint.meta.get("buffer")
    if entry is None:
        return
    state = dict(entry)
    arrays = checkpoint.arrays_in("buffer")
    state["inputs"] = arrays.get("inputs")
    state["targets"] = arrays.get("targets")
    buffer.load_state_dict(state)


# ---------------------------------------------------------------------- #
# RNG streams
# ---------------------------------------------------------------------- #
def pack_rng(checkpoint: Checkpoint, roots: dict) -> None:
    """Snapshot every generator reachable from each named root object."""
    checkpoint.meta["rng"] = {
        name: collect_rng_states(root) for name, root in roots.items()
    }


def unpack_rng(checkpoint: Checkpoint, roots: dict, strict: bool = True) -> None:
    saved = checkpoint.meta.get("rng", {})
    for name, root in roots.items():
        states = saved.get(name)
        if states:
            restore_rng_states(root, states, strict=strict)
