"""Training strategies for streaming data (Sec. V-B.1, Fig. 5).

Besides the replay-based URCL trainer, the paper compares two simpler ways
of dealing with a stream:

* **OneFitAll** — train once on the base set and keep predicting;
* **FinetuneST** — re-train (fine-tune) the same model on every incremental
  set, starting from the previously learned weights.

The Table III protocol ("repeatably train each original baseline on each
base and incremental set") is the FinetuneST strategy applied to the
baseline models, so :class:`FinetuneSTStrategy` covers both uses.  Classical
models (ARIMA) are re-fitted per set by :class:`ClassicalRefitStrategy`.
"""

from __future__ import annotations

import time

import numpy as np

from ..data.loader import DataLoader
from ..data.streaming import StreamingScenario, StreamSet
from ..models.base import STModel
from ..models.baselines.classical import ClassicalForecaster
from ..nn.losses import mae_loss
from ..nn.module import Module
from ..nn.optim import Adam, Optimizer, clip_grad_norm
from ..tensor import Tensor
from ..utils.logging import get_logger
from .config import TrainingConfig
from .evaluation import evaluate_classical_on_sets, evaluate_model_on_sets
from .results import ContinualResult, SetResult

__all__ = [
    "fit_on_dataset",
    "StreamingStrategy",
    "OneFitAllStrategy",
    "FinetuneSTStrategy",
    "ClassicalRefitStrategy",
]

_LOGGER = get_logger("strategies")


def fit_on_dataset(
    model: Module,
    dataset,
    epochs: int,
    batch_size: int = 16,
    learning_rate: float = 1e-3,
    optimizer: Optimizer | None = None,
    grad_clip: float = 5.0,
    max_batches_per_epoch: int | None = None,
    shuffle: bool = True,
    rng=None,
    graph=None,
) -> tuple[Optimizer, list[float], float]:
    """Standard supervised training of a predictor on a windowed dataset.

    Returns the optimizer (so callers can keep fine-tuning), the per-batch
    loss history and the elapsed wall-clock seconds.  ``graph`` optionally
    overrides the sensor graph for every forward pass (a
    :class:`repro.graph.Graph`, e.g. fine-tuning on an updated road
    network); models whose ``forward`` takes no graph override reject it.
    """
    if optimizer is None:
        optimizer = Adam(model.parameters(), lr=learning_rate)
    losses: list[float] = []
    start = time.perf_counter()
    for _ in range(max(epochs, 0)):
        loader = DataLoader(dataset, batch_size=batch_size, shuffle=shuffle, rng=rng)
        for batch_index, batch in enumerate(loader):
            if max_batches_per_epoch is not None and batch_index >= max_batches_per_epoch:
                break
            inputs = Tensor(batch.inputs)
            predictions = model(inputs) if graph is None else model(inputs, graph=graph)
            loss = mae_loss(predictions, Tensor(batch.targets))
            model.zero_grad()
            loss.backward()
            if grad_clip > 0:
                clip_grad_norm(model.parameters(), grad_clip)
            optimizer.step()
            losses.append(float(loss.item()))
    elapsed = time.perf_counter() - start
    return optimizer, losses, elapsed


class StreamingStrategy:
    """Base class: run a model through a streaming scenario."""

    name = "strategy"

    def __init__(self, training: TrainingConfig | None = None):
        self.training = training or TrainingConfig()

    # ------------------------------------------------------------------ #
    def _test_sets(self, scenario: StreamingScenario, set_index: int) -> list:
        """Test splits used to score the ``set_index``-th period (see
        :class:`TrainingConfig.eval_protocol`)."""
        if self.training.eval_protocol == "cumulative":
            return [s.test for s in scenario.sets[: set_index + 1]]
        return [scenario.sets[set_index].test]

    def _evaluate(
        self, model: STModel, scenario: StreamingScenario, set_index: int
    ) -> tuple:
        target_channel = scenario.spec.target_channel if scenario.spec else None
        test_sets = self._test_sets(scenario, set_index)
        start = time.perf_counter()
        metrics = evaluate_model_on_sets(
            model,
            test_sets,
            batch_size=self.training.eval_batch_size,
            scaler=scenario.scaler,
            target_channel=target_channel,
            max_windows_per_set=self.training.eval_max_windows,
        )
        elapsed = time.perf_counter() - start
        windows = sum(
            min(len(dataset), self.training.eval_max_windows or len(dataset))
            for dataset in test_sets
        )
        return metrics, elapsed / max(windows, 1)

    def run(self, scenario: StreamingScenario, model: STModel, graph=None) -> ContinualResult:
        raise NotImplementedError


class OneFitAllStrategy(StreamingStrategy):
    """Train on the base set only; predict every later period unchanged."""

    name = "OneFitAll"

    def run(self, scenario: StreamingScenario, model: STModel, graph=None) -> ContinualResult:
        dataset_name = scenario.spec.name if scenario.spec else "custom"
        result = ContinualResult(method=self.name, dataset=dataset_name)
        base = scenario.base_set
        _, losses, seconds = fit_on_dataset(
            model,
            base.train,
            epochs=self.training.epochs_base,
            batch_size=self.training.batch_size,
            learning_rate=self.training.learning_rate,
            grad_clip=self.training.grad_clip,
            max_batches_per_epoch=self.training.max_batches_per_epoch,
            graph=graph,
        )
        for set_index, stream_set in enumerate(scenario.sets):
            metrics, inference = self._evaluate(model, scenario, set_index)
            result.add(
                SetResult(
                    name=stream_set.name,
                    metrics=metrics,
                    epochs=self.training.epochs_base if set_index == 0 else 0,
                    train_seconds=seconds if set_index == 0 else 0.0,
                    loss_history=losses if set_index == 0 else [],
                    inference_seconds_per_window=inference,
                )
            )
        return result


class FinetuneSTStrategy(StreamingStrategy):
    """Re-train the same model on every incremental set (no replay)."""

    name = "FinetuneST"

    def run(self, scenario: StreamingScenario, model: STModel, graph=None) -> ContinualResult:
        dataset_name = scenario.spec.name if scenario.spec else "custom"
        result = ContinualResult(method=self.name, dataset=dataset_name)
        optimizer: Optimizer | None = None
        for set_index, stream_set in enumerate(scenario.sets):
            epochs = self.training.epochs_for(set_index)
            optimizer, losses, seconds = fit_on_dataset(
                model,
                stream_set.train,
                epochs=epochs,
                batch_size=self.training.batch_size,
                learning_rate=self.training.learning_rate,
                optimizer=optimizer,
                grad_clip=self.training.grad_clip,
                max_batches_per_epoch=self.training.max_batches_per_epoch,
                graph=graph,
            )
            metrics, inference = self._evaluate(model, scenario, set_index)
            _LOGGER.info("%s | %s | %s", self.name, dataset_name, stream_set.name)
            result.add(
                SetResult(
                    name=stream_set.name,
                    metrics=metrics,
                    epochs=epochs,
                    train_seconds=seconds,
                    loss_history=losses,
                    inference_seconds_per_window=inference,
                )
            )
        return result


class ClassicalRefitStrategy(StreamingStrategy):
    """Re-fit a closed-form forecaster (e.g. ARIMA) on every stream period."""

    name = "ClassicalRefit"

    def run(self, scenario: StreamingScenario, model: ClassicalForecaster, graph=None) -> ContinualResult:
        # Classical forecasters are graph-free; the override is accepted for
        # interface symmetry and ignored.
        dataset_name = scenario.spec.name if scenario.spec else "custom"
        target_channel = scenario.spec.target_channel if scenario.spec else 0
        result = ContinualResult(method=self.name, dataset=dataset_name)
        for set_index, stream_set in enumerate(scenario.sets):
            start = time.perf_counter()
            model.fit(stream_set.train.series[..., target_channel])
            seconds = time.perf_counter() - start
            eval_start = time.perf_counter()
            test_sets = self._test_sets(scenario, set_index)
            metrics = evaluate_classical_on_sets(
                model,
                test_sets,
                target_channel=target_channel,
                scaler=scenario.scaler,
                scaler_channel=target_channel,
                max_windows_per_set=self.training.eval_max_windows,
            )
            windows = sum(len(dataset) for dataset in test_sets)
            inference = (time.perf_counter() - eval_start) / max(windows, 1)
            result.add(
                SetResult(
                    name=stream_set.name,
                    metrics=metrics,
                    epochs=1,
                    train_seconds=seconds,
                    inference_seconds_per_window=inference,
                )
            )
        return result
