"""Continual training loop for URCL (Algorithm 1)."""

from __future__ import annotations

import time

import numpy as np

from ..data.loader import DataLoader
from ..data.streaming import StreamingScenario, StreamSet
from ..nn.optim import Adam, clip_grad_norm
from ..utils.logging import get_logger
from ..utils.random import get_rng
from .config import TrainingConfig
from .evaluation import evaluate_model_on_sets
from .results import ContinualResult, SetResult
from .urcl import URCLModel

__all__ = ["ContinualTrainer"]

_LOGGER = get_logger("trainer")


class ContinualTrainer:
    """Drive a :class:`URCLModel` through a streaming scenario.

    The trainer keeps one optimizer alive across all stream periods (the
    model is *continually* updated, never re-initialised), selects batches
    sequentially as prescribed by Algorithm 1 and records the loss history,
    training time and inference latency needed to reproduce Figs. 7 and 8.
    """

    def __init__(self, model: URCLModel, training: TrainingConfig | None = None, rng=None):
        self.model = model
        self.training = training or TrainingConfig()
        self.optimizer = Adam(
            model.parameters(),
            lr=self.training.learning_rate,
            weight_decay=self.training.weight_decay,
        )
        self._rng = get_rng(rng if rng is not None else self.training.seed)

    # ------------------------------------------------------------------ #
    def _train_one_epoch(self, stream_set: StreamSet) -> list[float]:
        losses: list[float] = []
        # Algorithm 1 selects batches sequentially from the stream; shuffling
        # within a period is allowed (and is essential when
        # ``max_batches_per_epoch`` caps the per-epoch work at reduced scale,
        # otherwise only the earliest windows of the period would be seen).
        loader = DataLoader(
            stream_set.train,
            batch_size=self.training.batch_size,
            shuffle=self.training.shuffle_batches,
            rng=self._rng,
        )
        for batch_index, batch in enumerate(loader):
            if (
                self.training.max_batches_per_epoch is not None
                and batch_index >= self.training.max_batches_per_epoch
            ):
                break
            step = self.model.training_step(batch.inputs, batch.targets, set_name=stream_set.name)
            self.model.zero_grad()
            step.total_loss.backward()
            if self.training.grad_clip > 0:
                clip_grad_norm(self.model.parameters(), self.training.grad_clip)
            self.optimizer.step()
            losses.append(float(step.total_loss.item()))
        return losses

    def train_on_set(self, stream_set: StreamSet, set_index: int) -> tuple[list[float], float, int]:
        """Train on one stream period; returns (loss history, seconds, epochs)."""
        epochs = self.training.epochs_for(set_index)
        history: list[float] = []
        start = time.perf_counter()
        for _ in range(epochs):
            history.extend(self._train_one_epoch(stream_set))
        elapsed = time.perf_counter() - start
        return history, elapsed, epochs

    def evaluate_after_set(self, scenario: StreamingScenario, set_index: int) -> tuple:
        """Evaluate the model after training on the ``set_index``-th period.

        Under the default ``cumulative`` protocol the test splits of every
        period seen so far are pooled (knowledge retention); the ``current``
        protocol uses only the latest period's test split.  Returns
        ``(metrics, seconds_per_window)``.
        """
        target_channel = scenario.spec.target_channel if scenario.spec else None
        if self.training.eval_protocol == "cumulative":
            test_sets = [s.test for s in scenario.sets[: set_index + 1]]
        else:
            test_sets = [scenario.sets[set_index].test]
        start = time.perf_counter()
        metrics = evaluate_model_on_sets(
            self.model.backbone,
            test_sets,
            batch_size=self.training.eval_batch_size,
            scaler=scenario.scaler,
            target_channel=target_channel,
            max_windows_per_set=self.training.eval_max_windows,
        )
        elapsed = time.perf_counter() - start
        windows = sum(
            min(len(dataset), self.training.eval_max_windows or len(dataset))
            for dataset in test_sets
        )
        return metrics, elapsed / max(windows, 1)

    # ------------------------------------------------------------------ #
    def run(self, scenario: StreamingScenario, method_name: str = "URCL") -> ContinualResult:
        """Process every stream period in order (Fig. 5 protocol)."""
        dataset_name = scenario.spec.name if scenario.spec else "custom"
        result = ContinualResult(method=method_name, dataset=dataset_name)
        for set_index, stream_set in enumerate(scenario.sets):
            history, seconds, epochs = self.train_on_set(stream_set, set_index)
            metrics, inference = self.evaluate_after_set(scenario, set_index)
            _LOGGER.info(
                "%s | %s | %s | train %.1fs", method_name, dataset_name, stream_set.name, seconds
            )
            result.add(
                SetResult(
                    name=stream_set.name,
                    metrics=metrics,
                    epochs=epochs,
                    train_seconds=seconds,
                    loss_history=history,
                    inference_seconds_per_window=inference,
                )
            )
        return result
