"""Continual training loop for URCL (Algorithm 1) with durable checkpoints."""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from ..data.loader import DataLoader
from ..data.streaming import StreamingScenario, StreamSet
from ..exceptions import TrainingError
from ..nn.optim import Adam, Optimizer, clip_grad_norm
from ..utils.checkpoint import Checkpoint
from ..utils.logging import get_logger
from ..utils.random import get_rng
from . import checkpoint as ckpt
from .config import TrainingConfig
from .evaluation import evaluate_model_on_sets
from .results import ContinualResult, SetResult
from .urcl import URCLModel

__all__ = ["ContinualTrainer"]

_LOGGER = get_logger("trainer")


class ContinualTrainer:
    """Drive a :class:`URCLModel` through a streaming scenario.

    The trainer keeps one optimizer alive across all stream periods (the
    model is *continually* updated, never re-initialised), selects batches
    sequentially as prescribed by Algorithm 1 and records the loss history,
    training time and inference latency needed to reproduce Figs. 7 and 8.

    Long streaming runs are durable: :meth:`run` can write a checkpoint
    after every stream period, and :meth:`resume` rebuilds a trainer from
    such a checkpoint so a killed run continues *bit-exactly* — parameters,
    optimizer moments, replay buffer and every RNG stream are restored, so
    the continued run produces the same :class:`ContinualResult` as an
    uninterrupted one.
    """

    def __init__(
        self,
        model: URCLModel,
        training: TrainingConfig | None = None,
        rng=None,
        optimizer: Optimizer | None = None,
    ):
        self.model = model
        self.training = training or TrainingConfig()
        self.optimizer = optimizer or Adam(
            model.parameters(),
            lr=self.training.learning_rate,
            weight_decay=self.training.weight_decay,
        )
        self._rng = get_rng(rng if rng is not None else self.training.seed)
        # Progress state (advanced by run(), persisted by save_checkpoint()).
        self._completed_sets = 0
        self._partial_result: ContinualResult | None = None
        # Mid-set progress: set only between mid-epoch checkpoints of the
        # current period (None at every set boundary).
        self._mid_set: dict | None = None

    # ------------------------------------------------------------------ #
    def _train_one_epoch(
        self,
        stream_set: StreamSet,
        history: list[float] | None = None,
        order: np.ndarray | None = None,
        start_batch: int = 0,
        on_batch=None,
    ) -> list[float]:
        history = [] if history is None else history
        # Algorithm 1 selects batches sequentially from the stream; shuffling
        # within a period is allowed (and is essential when
        # ``max_batches_per_epoch`` caps the per-epoch work at reduced scale,
        # otherwise only the earliest windows of the period would be seen).
        loader = DataLoader(
            stream_set.train,
            batch_size=self.training.batch_size,
            shuffle=self.training.shuffle_batches,
            rng=self._rng,
        )
        if order is None:
            order = loader.draw_order()
        for batch_index, batch in enumerate(
            loader.iter_batches(order, start_batch=start_batch), start=start_batch
        ):
            if (
                self.training.max_batches_per_epoch is not None
                and batch_index >= self.training.max_batches_per_epoch
            ):
                break
            step = self.model.training_step(batch.inputs, batch.targets, set_name=stream_set.name)
            self.model.zero_grad()
            step.total_loss.backward()
            if self.training.grad_clip > 0:
                clip_grad_norm(self.model.parameters(), self.training.grad_clip)
            self.optimizer.step()
            history.append(float(step.total_loss.item()))
            if on_batch is not None:
                on_batch(batch_index, order)
        return history

    def train_on_set(
        self,
        stream_set: StreamSet,
        set_index: int,
        mid_state: dict | None = None,
        checkpoint_fn=None,
    ) -> tuple[list[float], float, int]:
        """Train on one stream period; returns (loss history, seconds, epochs).

        ``mid_state`` continues a period interrupted mid-epoch: completed
        epochs are skipped, the interrupted epoch replays its *saved*
        window order from the batch after the checkpointed one (the
        restored RNG stream has already consumed that epoch's shuffle), and
        the previously recorded losses/train time are carried over — the
        completed period is bit-identical to an uninterrupted one.
        ``checkpoint_fn`` (used by :meth:`run`) is called after every
        optimizer step with a zero-argument builder of the mid-set progress
        dict; whoever saves assigns it to ``self._mid_set`` first.
        """
        epochs = self.training.epochs_for(set_index)
        if mid_state is not None:
            history = [
                float("nan") if value is None else float(value)
                for value in mid_state.get("losses", [])
            ]
            base_seconds = float(mid_state.get("train_seconds", 0.0))
            resume_epoch = int(mid_state["epoch_index"])
            resume_batch = int(mid_state["batch_index"]) + 1
            resume_order = np.asarray(mid_state["order"], dtype=int)
        else:
            history = []
            base_seconds = 0.0
            resume_epoch, resume_batch, resume_order = 0, 0, None
        start = time.perf_counter()
        for epoch_index in range(resume_epoch, epochs):
            if epoch_index == resume_epoch and resume_order is not None:
                order, start_batch = resume_order, resume_batch
            else:
                order, start_batch = None, 0
            on_batch = None
            if checkpoint_fn is not None:

                def on_batch(batch_index, epoch_order, epoch_index=epoch_index):
                    checkpoint_fn(
                        lambda: {
                            "set_index": set_index,
                            "epoch_index": epoch_index,
                            "batch_index": int(batch_index),
                            "order": np.asarray(epoch_order).tolist(),
                            "losses": list(history),
                            "train_seconds": base_seconds
                            + (time.perf_counter() - start),
                        }
                    )

            self._train_one_epoch(
                stream_set, history, order=order, start_batch=start_batch, on_batch=on_batch
            )
        elapsed = base_seconds + (time.perf_counter() - start)
        self._mid_set = None
        return history, elapsed, epochs

    def evaluate_after_set(self, scenario: StreamingScenario, set_index: int) -> tuple:
        """Evaluate the model after training on the ``set_index``-th period.

        Under the default ``cumulative`` protocol the test splits of every
        period seen so far are pooled (knowledge retention); the ``current``
        protocol uses only the latest period's test split.  Returns
        ``(metrics, seconds_per_window)``.
        """
        target_channel = scenario.spec.target_channel if scenario.spec else None
        if self.training.eval_protocol == "cumulative":
            test_sets = [s.test for s in scenario.sets[: set_index + 1]]
        else:
            test_sets = [scenario.sets[set_index].test]
        start = time.perf_counter()
        metrics = evaluate_model_on_sets(
            self.model.backbone,
            test_sets,
            batch_size=self.training.eval_batch_size,
            scaler=scenario.scaler,
            target_channel=target_channel,
            max_windows_per_set=self.training.eval_max_windows,
        )
        elapsed = time.perf_counter() - start
        windows = sum(
            min(len(dataset), self.training.eval_max_windows or len(dataset))
            for dataset in test_sets
        )
        return metrics, elapsed / max(windows, 1)

    # ------------------------------------------------------------------ #
    def run(
        self,
        scenario: StreamingScenario,
        method_name: str = "URCL",
        checkpoint_dir: str | Path | None = None,
        max_sets: int | None = None,
        scenario_info: dict | None = None,
        checkpoint_every_n_batches: int | None = None,
    ) -> ContinualResult:
        """Process every stream period in order (Fig. 5 protocol).

        Parameters
        ----------
        checkpoint_dir:
            When given, the full trainer state is saved here after *every*
            stream period, so the run survives being killed at any set
            boundary (:meth:`resume` continues it).
        max_sets:
            Stop after this many total stream periods (counting ones
            completed before a resume); ``None`` processes the whole
            scenario.  The returned result is partial in that case and the
            next :meth:`run` call picks up where this one stopped.
        scenario_info:
            Optional JSON-serialisable description of how to rebuild the
            scenario (dataset name, scale, seed); stored verbatim in the
            checkpoint for CLI-driven resumes.
        checkpoint_every_n_batches:
            Additionally checkpoint after every ``n`` optimizer steps
            (requires ``checkpoint_dir``).  Very long periods then survive
            a kill at *any* batch, not just set boundaries: the bundle
            records the position inside the period (epoch, batch, the
            epoch's window order, losses so far) and :meth:`resume`
            continues from the step after it, bit-exactly.
        """
        if checkpoint_every_n_batches is not None:
            if checkpoint_dir is None:
                raise TrainingError(
                    "checkpoint_every_n_batches requires checkpoint_dir"
                )
            if checkpoint_every_n_batches < 1:
                raise TrainingError(
                    f"checkpoint_every_n_batches must be >= 1, "
                    f"got {checkpoint_every_n_batches}"
                )
        dataset_name = scenario.spec.name if scenario.spec else "custom"
        if self._partial_result is not None:
            result = self._partial_result
            method_name = result.method
        else:
            result = ContinualResult(method=method_name, dataset=dataset_name)
            self._partial_result = result
        checkpoint_fn = None
        if checkpoint_every_n_batches is not None:
            steps = {"count": 0}

            def checkpoint_fn(make_mid_state):
                steps["count"] += 1
                if steps["count"] % checkpoint_every_n_batches:
                    return
                self._mid_set = make_mid_state()
                self.save_checkpoint(
                    checkpoint_dir, scenario=scenario, scenario_info=scenario_info
                )

        last_set = len(scenario.sets) if max_sets is None else min(max_sets, len(scenario.sets))
        for set_index in range(self._completed_sets, last_set):
            stream_set = scenario.sets[set_index]
            mid_state = None
            if self._mid_set is not None:
                if int(self._mid_set.get("set_index", -1)) != set_index:
                    raise TrainingError(
                        f"checkpoint records mid-set progress for set "
                        f"{self._mid_set.get('set_index')} but training is at set {set_index}"
                    )
                mid_state = self._mid_set
            history, seconds, epochs = self.train_on_set(
                stream_set, set_index, mid_state=mid_state, checkpoint_fn=checkpoint_fn
            )
            metrics, inference = self.evaluate_after_set(scenario, set_index)
            _LOGGER.info(
                "%s | %s | %s | train %.1fs", method_name, dataset_name, stream_set.name, seconds
            )
            result.add(
                SetResult(
                    name=stream_set.name,
                    metrics=metrics,
                    epochs=epochs,
                    train_seconds=seconds,
                    loss_history=history,
                    inference_seconds_per_window=inference,
                )
            )
            self._completed_sets = set_index + 1
            if checkpoint_dir is not None:
                self.save_checkpoint(checkpoint_dir, scenario=scenario, scenario_info=scenario_info)
        return result

    # ------------------------------------------------------------------ #
    # Checkpoint / resume
    # ------------------------------------------------------------------ #
    @property
    def completed_sets(self) -> int:
        """Number of stream periods fully processed so far."""
        return self._completed_sets

    def save_checkpoint(
        self,
        path: str | Path,
        scenario: StreamingScenario | None = None,
        scenario_info: dict | None = None,
    ) -> Path:
        """Persist the complete training state to ``path``.

        The bundle contains the model config + parameters, Adam moments and
        step count, replay-buffer contents, every RNG stream, the library
        dtype, the training config and the per-set results so far.  When
        ``scenario`` is given its scaler, network and target channel are
        included too, which makes the checkpoint directly loadable by
        :class:`repro.serve.Forecaster`.
        """
        checkpoint = Checkpoint(meta={"kind": "trainer"})
        ckpt.pack_dtype(checkpoint)
        ckpt.pack_model(checkpoint, self.model)
        ckpt.pack_optimizer(checkpoint, self.optimizer)
        ckpt.pack_rng(checkpoint, {"trainer": self._rng, "model": self.model})
        if getattr(self.model, "buffer", None) is not None:
            ckpt.pack_buffer(checkpoint, self.model.buffer)
        checkpoint.meta["training"] = self.training.to_dict()
        checkpoint.meta["progress"] = {
            "completed_sets": self._completed_sets,
            "result": None if self._partial_result is None else self._partial_result.to_state(),
            "mid_set": self._mid_set,
        }
        if scenario is not None:
            ckpt.pack_scaler(checkpoint, scenario.scaler)
            ckpt.pack_network(checkpoint, scenario.network)
            if scenario.spec is not None:
                checkpoint.meta["target_channel"] = scenario.spec.target_channel
        else:
            ckpt.pack_network(checkpoint, self.model.network)
        if scenario_info is not None:
            checkpoint.meta["scenario"] = scenario_info
        return checkpoint.save(path)

    @classmethod
    def resume(
        cls,
        path: "str | Path | Checkpoint",
        scenario: StreamingScenario | None = None,
    ) -> "ContinualTrainer":
        """Rebuild a trainer from :meth:`save_checkpoint` output.

        Restores the library dtype first (parameters keep their exact
        bits), rebuilds the model through the registry, then loads the
        optimizer slots, replay buffer, RNG streams and progress.  Calling
        :meth:`run` afterwards continues the stream bit-exactly where the
        checkpointed run stopped.  An already loaded :class:`Checkpoint`
        is accepted to avoid re-reading the bundle.
        """
        checkpoint = path if isinstance(path, Checkpoint) else Checkpoint.load(path)
        ckpt.apply_dtype(checkpoint)
        network = scenario.network if scenario is not None else ckpt.unpack_network(checkpoint)
        model = ckpt.unpack_model(checkpoint, network=network, rng=0)
        training = TrainingConfig.from_dict(checkpoint.meta.get("training", {}))
        trainer = cls(model, training)
        ckpt.unpack_optimizer(checkpoint, trainer.optimizer)
        if getattr(model, "buffer", None) is not None:
            ckpt.unpack_buffer(checkpoint, model.buffer)
        ckpt.unpack_rng(checkpoint, {"trainer": trainer._rng, "model": model})
        progress = checkpoint.meta.get("progress", {})
        trainer._completed_sets = int(progress.get("completed_sets", 0))
        result_state = progress.get("result")
        if result_state is not None:
            trainer._partial_result = ContinualResult.from_state(result_state)
        trainer._mid_set = progress.get("mid_set")
        return trainer
