"""Configuration objects for the URCL framework and its training loop."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from ..exceptions import ConfigurationError
from ..models.stencoder import STEncoderConfig

__all__ = ["URCLConfig", "TrainingConfig"]

_BACKBONES = ("graphwavenet", "dcrnn", "geoman")


@dataclass(frozen=True)
class URCLConfig:
    """Hyper-parameters of the URCL framework (Sec. IV).

    The four ``use_*`` switches correspond exactly to the ablations of
    Fig. 6: ``use_mixup`` (w/o STU), ``use_rmir`` (w/o RMIR),
    ``use_augmentation`` (w/o STA) and ``use_graphcl`` (w/o GCL).
    """

    backbone: str = "graphwavenet"
    encoder: STEncoderConfig = field(default_factory=STEncoderConfig)
    # Replay (Sec. IV-B)
    buffer_capacity: int = 256
    replay_sample_size: int = 8
    use_replay: bool = True
    use_rmir: bool = True
    rmir_virtual_lr: float = 0.01
    rmir_candidate_pool: int = 64
    # STMixup (Eq. 4-5)
    use_mixup: bool = True
    mixup_alpha: float = 0.4
    # Reduced-scale stabilisation: besides the mixed batch of Eq. 28, also
    # supervise on the untouched current batch.  The paper's Eq. 28 trains on
    # the mixed batch only (set this to False for the exact formulation); at
    # the small epoch budgets used on CPU the joint loss keeps convergence on
    # the current period stable while replay still preserves old knowledge.
    joint_current_loss: bool = True
    # STSimSiam / GraphCL (Sec. IV-C).  The paper sums the two losses with
    # equal weight and a sharp temperature; at the reduced CPU scale the
    # contrastive gradients would then dominate the handful of optimisation
    # steps available, so the defaults down-weight and soften the SSL term
    # (see DESIGN.md, "deviations").  Set ssl_weight=1.0, temperature=0.5 to
    # recover the paper's Eq. 29 exactly.
    use_augmentation: bool = True
    use_graphcl: bool = True
    ssl_weight: float = 0.1
    temperature: float = 2.0
    projection_hidden: int = 64
    # Backbone widths for the recurrent/attention variants
    backbone_hidden: int = 32
    backbone_latent: int = 32
    decoder_hidden: int = 64

    def __post_init__(self) -> None:
        if self.backbone not in _BACKBONES:
            raise ConfigurationError(
                f"unknown backbone {self.backbone!r}; expected one of {_BACKBONES}"
            )
        if self.buffer_capacity < 1:
            raise ConfigurationError("buffer_capacity must be >= 1")
        if self.replay_sample_size < 1:
            raise ConfigurationError("replay_sample_size must be >= 1")
        if self.mixup_alpha <= 0:
            raise ConfigurationError("mixup_alpha must be positive")
        if self.ssl_weight < 0:
            raise ConfigurationError("ssl_weight must be non-negative")
        if self.temperature <= 0:
            raise ConfigurationError("temperature must be positive")

    # Serialisation ---------------------------------------------------- #
    def to_dict(self) -> dict:
        """JSON-serialisable form (nested encoder config included)."""
        config = asdict(self)
        config["encoder"] = self.encoder.to_dict()
        return config

    @classmethod
    def from_dict(cls, config: "dict | URCLConfig") -> "URCLConfig":
        """Rebuild from :meth:`to_dict` output."""
        if isinstance(config, cls):
            return config
        config = dict(config)
        if "encoder" in config and config["encoder"] is not None:
            config["encoder"] = STEncoderConfig.from_dict(config["encoder"])
        return cls(**config)

    # Ablation helpers ------------------------------------------------- #
    def without(self, component: str) -> "URCLConfig":
        """Return a copy with one component disabled.

        ``component`` is one of ``"mixup"`` (w/o STU), ``"rmir"``
        (w/o RMIR), ``"augmentation"`` (w/o STA), ``"graphcl"`` (w/o GCL)
        or ``"replay"``.
        """
        mapping = {
            "mixup": {"use_mixup": False},
            "rmir": {"use_rmir": False},
            "augmentation": {"use_augmentation": False},
            "graphcl": {"use_graphcl": False},
            "replay": {"use_replay": False},
        }
        if component not in mapping:
            raise ConfigurationError(
                f"unknown component {component!r}; expected one of {sorted(mapping)}"
            )
        return replace(self, **mapping[component])


@dataclass(frozen=True)
class TrainingConfig:
    """Optimisation and evaluation settings for the continual trainer.

    ``eval_protocol`` selects how each stream period is scored after the
    model has trained on it: ``"cumulative"`` (default) evaluates on the
    test splits of *every period seen so far*, which is the protocol that
    exposes catastrophic forgetting (the paper's central claim — knowledge
    from previous streaming sequences must be preserved); ``"current"``
    evaluates only on the period just trained on.
    """

    epochs_base: int = 5
    epochs_incremental: int = 3
    batch_size: int = 16
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    shuffle_batches: bool = True
    max_batches_per_epoch: int | None = None
    eval_batch_size: int = 64
    eval_max_windows: int | None = None
    eval_protocol: str = "cumulative"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs_base < 1 or self.epochs_incremental < 0:
            raise ConfigurationError("epoch counts must be positive")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.eval_protocol not in ("current", "cumulative"):
            raise ConfigurationError(
                "eval_protocol must be 'current' (test split of the period just "
                "trained on) or 'cumulative' (test splits of every period seen "
                f"so far, the knowledge-retention protocol); got {self.eval_protocol!r}"
            )

    def epochs_for(self, set_index: int) -> int:
        """Epoch budget for the ``set_index``-th stream period (0 = base set)."""
        return self.epochs_base if set_index == 0 else self.epochs_incremental

    # Serialisation ---------------------------------------------------- #
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, config: "dict | TrainingConfig") -> "TrainingConfig":
        if isinstance(config, cls):
            return config
        return cls(**dict(config))
