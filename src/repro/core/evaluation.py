"""Model evaluation over windowed datasets."""

from __future__ import annotations

import numpy as np

from ..data.dataset import STDataset
from ..data.loader import DataLoader
from ..data.scalers import Scaler
from ..models.base import STModel
from ..models.baselines.classical import ClassicalForecaster
from .metrics import PredictionMetrics, compute_metrics

__all__ = [
    "evaluate_model",
    "evaluate_model_on_sets",
    "evaluate_classical",
    "evaluate_classical_on_sets",
    "collect_predictions",
]


def _maybe_inverse(
    values: np.ndarray, scaler: Scaler | None, target_channel: int | None
) -> np.ndarray:
    if scaler is None or target_channel is None:
        return values
    return scaler.inverse_transform_channel(values, target_channel)


def collect_predictions(
    model: STModel,
    dataset: STDataset,
    batch_size: int = 64,
    max_windows: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run the model over ``dataset`` and return stacked (predictions, targets)."""
    model.eval()
    predictions = []
    targets = []
    seen = 0
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    for batch in loader:
        outputs = model.predict(batch.inputs)
        predictions.append(outputs)
        targets.append(batch.targets)
        seen += len(batch)
        if max_windows is not None and seen >= max_windows:
            break
    model.train()
    return np.concatenate(predictions, axis=0), np.concatenate(targets, axis=0)


def evaluate_model(
    model: STModel,
    dataset: STDataset,
    batch_size: int = 64,
    scaler: Scaler | None = None,
    target_channel: int | None = None,
    max_windows: int | None = None,
) -> PredictionMetrics:
    """Evaluate a neural predictor on ``dataset``.

    When ``scaler`` and ``target_channel`` are given, predictions and targets
    are mapped back to physical units (mph / vehicles per interval) before
    computing MAE/RMSE, matching how the paper reports Table II–IV.
    """
    predictions, targets = collect_predictions(
        model, dataset, batch_size=batch_size, max_windows=max_windows
    )
    predictions = _maybe_inverse(predictions, scaler, target_channel)
    targets = _maybe_inverse(targets, scaler, target_channel)
    return compute_metrics(predictions, targets)


def evaluate_model_on_sets(
    model: STModel,
    datasets: list[STDataset],
    batch_size: int = 64,
    scaler: Scaler | None = None,
    target_channel: int | None = None,
    max_windows_per_set: int | None = None,
) -> PredictionMetrics:
    """Evaluate on the union of several test splits (cumulative protocol).

    Predictions over every dataset are pooled before computing MAE/RMSE, so
    the result equals evaluating on the concatenation of the test windows of
    all stream periods seen so far.
    """
    if not datasets:
        raise ValueError("evaluate_model_on_sets requires at least one dataset")
    pooled_predictions = []
    pooled_targets = []
    for dataset in datasets:
        predictions, targets = collect_predictions(
            model, dataset, batch_size=batch_size, max_windows=max_windows_per_set
        )
        pooled_predictions.append(predictions)
        pooled_targets.append(targets)
    predictions = np.concatenate(pooled_predictions, axis=0)
    targets = np.concatenate(pooled_targets, axis=0)
    predictions = _maybe_inverse(predictions, scaler, target_channel)
    targets = _maybe_inverse(targets, scaler, target_channel)
    return compute_metrics(predictions, targets)


def evaluate_classical(
    model: ClassicalForecaster,
    dataset: STDataset,
    target_channel: int = 0,
    scaler: Scaler | None = None,
    scaler_channel: int | None = None,
    max_windows: int | None = None,
) -> PredictionMetrics:
    """Evaluate a classical per-node forecaster (ARIMA, historical average)."""
    inputs, targets = dataset.arrays()
    if max_windows is not None:
        inputs = inputs[:max_windows]
        targets = targets[:max_windows]
    predictions = model.predict(inputs[..., target_channel])  # (batch, H, nodes)
    predictions = predictions[..., None]
    predictions = _maybe_inverse(predictions, scaler, scaler_channel)
    targets = _maybe_inverse(targets, scaler, scaler_channel)
    return compute_metrics(predictions, targets)


def evaluate_classical_on_sets(
    model: ClassicalForecaster,
    datasets: list[STDataset],
    target_channel: int = 0,
    scaler: Scaler | None = None,
    scaler_channel: int | None = None,
    max_windows_per_set: int | None = None,
) -> PredictionMetrics:
    """Cumulative-protocol evaluation for classical per-node forecasters."""
    if not datasets:
        raise ValueError("evaluate_classical_on_sets requires at least one dataset")
    pooled_predictions = []
    pooled_targets = []
    for dataset in datasets:
        inputs, targets = dataset.arrays()
        if max_windows_per_set is not None:
            inputs = inputs[:max_windows_per_set]
            targets = targets[:max_windows_per_set]
        predictions = model.predict(inputs[..., target_channel])[..., None]
        pooled_predictions.append(predictions)
        pooled_targets.append(targets)
    predictions = np.concatenate(pooled_predictions, axis=0)
    targets = np.concatenate(pooled_targets, axis=0)
    predictions = _maybe_inverse(predictions, scaler, scaler_channel)
    targets = _maybe_inverse(targets, scaler, scaler_channel)
    return compute_metrics(predictions, targets)
