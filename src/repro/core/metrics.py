"""Evaluation metrics (Sec. V-A.3, Eq. 30)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ShapeError

__all__ = ["mae", "rmse", "mape", "PredictionMetrics", "compute_metrics"]


def _validate(prediction: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    prediction = np.asarray(prediction, dtype=float)
    target = np.asarray(target, dtype=float)
    if prediction.shape != target.shape:
        raise ShapeError(
            f"prediction and target shapes differ: {prediction.shape} vs {target.shape}"
        )
    return prediction, target


def mae(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error."""
    prediction, target = _validate(prediction, target)
    return float(np.mean(np.abs(prediction - target)))


def rmse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error."""
    prediction, target = _validate(prediction, target)
    return float(np.sqrt(np.mean((prediction - target) ** 2)))


def mape(prediction: np.ndarray, target: np.ndarray, eps: float = 1e-3) -> float:
    """Mean absolute percentage error (entries with |target| < eps are ignored).

    When *every* target entry is masked out the metric is undefined and
    ``nan`` is returned — a perfect ``0.0`` on a degenerate set would
    silently report the best possible score.  Aggregations over several sets
    skip NaN entries (see :meth:`ContinualResult.mean_mape`).
    """
    prediction, target = _validate(prediction, target)
    mask = np.abs(target) > eps
    if not mask.any():
        return float("nan")
    return float(np.mean(np.abs((prediction[mask] - target[mask]) / target[mask])) * 100.0)


@dataclass(frozen=True)
class PredictionMetrics:
    """Bundle of the metrics reported in the paper's tables."""

    mae: float
    rmse: float
    mape: float
    num_samples: int

    def as_dict(self) -> dict[str, float]:
        return {
            "mae": self.mae,
            "rmse": self.rmse,
            "mape": self.mape,
            "num_samples": self.num_samples,
        }

    @classmethod
    def from_dict(cls, values: dict) -> "PredictionMetrics":
        """Rebuild from :meth:`as_dict` output (JSON ``null`` becomes NaN)."""

        def _float(value) -> float:
            return float("nan") if value is None else float(value)

        return cls(
            mae=_float(values["mae"]),
            rmse=_float(values["rmse"]),
            mape=_float(values["mape"]),
            num_samples=int(values.get("num_samples", 0)),
        )

    def __str__(self) -> str:
        return f"MAE={self.mae:.3f} RMSE={self.rmse:.3f} MAPE={self.mape:.2f}%"


def compute_metrics(prediction: np.ndarray, target: np.ndarray) -> PredictionMetrics:
    """Compute MAE/RMSE/MAPE in one pass."""
    prediction, target = _validate(prediction, target)
    return PredictionMetrics(
        mae=mae(prediction, target),
        rmse=rmse(prediction, target),
        mape=mape(prediction, target),
        num_samples=int(prediction.shape[0]) if prediction.ndim else 1,
    )
