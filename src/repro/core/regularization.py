"""Regularization-based continual learning baseline (EWC).

The paper's related-work section groups continual-learning methods into
replay-based (URCL), regularization-based and architecture-based families.
To let users compare URCL against the regularization family on the same
streaming protocol, this module provides Elastic Weight Consolidation
[Kirkpatrick et al., PNAS 2017]: after finishing a stream period, the
diagonal Fisher information of the loss is estimated and subsequent periods
are trained with a quadratic penalty that anchors important parameters to
their previously learned values.
"""

from __future__ import annotations

import time

import numpy as np

from ..data.loader import DataLoader
from ..data.streaming import StreamingScenario
from ..models.base import STModel
from ..nn.losses import mae_loss
from ..nn.optim import Adam, clip_grad_norm
from ..tensor import Tensor
from ..utils.logging import get_logger
from .config import TrainingConfig
from .results import ContinualResult, SetResult
from .strategies import StreamingStrategy

__all__ = ["EWCStrategy"]

_LOGGER = get_logger("ewc")


class EWCStrategy(StreamingStrategy):
    """Fine-tune on every stream period with an EWC penalty on old knowledge.

    Parameters
    ----------
    training:
        Shared training configuration (epochs, batch size, evaluation).
    ewc_lambda:
        Strength of the quadratic anchoring penalty.
    fisher_batches:
        Number of batches used to estimate the diagonal Fisher information
        after each period.
    """

    name = "EWC"

    def __init__(
        self,
        training: TrainingConfig | None = None,
        ewc_lambda: float = 100.0,
        fisher_batches: int = 4,
    ):
        super().__init__(training)
        if ewc_lambda < 0:
            raise ValueError("ewc_lambda must be non-negative")
        if fisher_batches < 1:
            raise ValueError("fisher_batches must be >= 1")
        self.ewc_lambda = ewc_lambda
        self.fisher_batches = fisher_batches
        self._fisher: list[np.ndarray] | None = None
        self._anchor: list[np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    def _penalty(self, model: STModel) -> Tensor | None:
        """Quadratic anchoring penalty ``lambda/2 * sum F_i (theta_i - theta*_i)^2``."""
        if self._fisher is None or self._anchor is None or self.ewc_lambda == 0:
            return None
        penalty: Tensor | None = None
        for parameter, fisher, anchor in zip(model.parameters(), self._fisher, self._anchor):
            difference = parameter - Tensor(anchor)
            term = (Tensor(fisher) * difference * difference).sum()
            penalty = term if penalty is None else penalty + term
        if penalty is None:
            return None
        return penalty * (0.5 * self.ewc_lambda)

    def _estimate_fisher(self, model: STModel, dataset) -> None:
        """Estimate the diagonal Fisher information on ``dataset`` and anchor
        the current parameters."""
        parameters = model.parameters()
        fisher = [np.zeros_like(parameter.data) for parameter in parameters]
        loader = DataLoader(dataset, batch_size=self.training.batch_size, shuffle=True)
        batches_used = 0
        for batch_index, batch in enumerate(loader):
            if batch_index >= self.fisher_batches:
                break
            model.zero_grad()
            loss = mae_loss(model(Tensor(batch.inputs)), Tensor(batch.targets))
            loss.backward()
            for slot, parameter in zip(fisher, parameters):
                if parameter.grad is not None:
                    slot += parameter.grad**2
            batches_used += 1
        if batches_used:
            fisher = [slot / batches_used for slot in fisher]
        model.zero_grad()
        self._fisher = fisher
        self._anchor = [parameter.data.copy() for parameter in parameters]

    def _fit_with_penalty(self, model: STModel, dataset, epochs: int, optimizer: Adam | None):
        if optimizer is None:
            optimizer = Adam(model.parameters(), lr=self.training.learning_rate)
        losses: list[float] = []
        start = time.perf_counter()
        for _ in range(max(epochs, 0)):
            loader = DataLoader(
                dataset, batch_size=self.training.batch_size,
                shuffle=self.training.shuffle_batches,
            )
            for batch_index, batch in enumerate(loader):
                if (
                    self.training.max_batches_per_epoch is not None
                    and batch_index >= self.training.max_batches_per_epoch
                ):
                    break
                loss = mae_loss(model(Tensor(batch.inputs)), Tensor(batch.targets))
                penalty = self._penalty(model)
                if penalty is not None:
                    loss = loss + penalty
                model.zero_grad()
                loss.backward()
                if self.training.grad_clip > 0:
                    clip_grad_norm(model.parameters(), self.training.grad_clip)
                optimizer.step()
                losses.append(float(loss.item()))
        return optimizer, losses, time.perf_counter() - start

    # ------------------------------------------------------------------ #
    def run(self, scenario: StreamingScenario, model: STModel) -> ContinualResult:
        dataset_name = scenario.spec.name if scenario.spec else "custom"
        result = ContinualResult(method=self.name, dataset=dataset_name)
        optimizer: Adam | None = None
        for set_index, stream_set in enumerate(scenario.sets):
            epochs = self.training.epochs_for(set_index)
            optimizer, losses, seconds = self._fit_with_penalty(
                model, stream_set.train, epochs, optimizer
            )
            self._estimate_fisher(model, stream_set.train)
            metrics, inference = self._evaluate(model, scenario, set_index)
            _LOGGER.info("%s | %s | %s", self.name, dataset_name, stream_set.name)
            result.add(
                SetResult(
                    name=stream_set.name,
                    metrics=metrics,
                    epochs=epochs,
                    train_seconds=seconds,
                    loss_history=losses,
                    inference_seconds_per_window=inference,
                )
            )
        return result
