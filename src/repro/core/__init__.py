"""URCL core: configuration, the unified model, the continual trainer, the
baseline training strategies, metrics and evaluation."""

from . import checkpoint
from .config import TrainingConfig, URCLConfig
from .evaluation import collect_predictions, evaluate_classical, evaluate_model
from .metrics import PredictionMetrics, compute_metrics, mae, mape, rmse
from .regularization import EWCStrategy
from .results import ContinualResult, SetResult
from .strategies import (
    ClassicalRefitStrategy,
    FinetuneSTStrategy,
    OneFitAllStrategy,
    StreamingStrategy,
    fit_on_dataset,
)
from .trainer import ContinualTrainer
from .urcl import StepOutput, URCLModel, build_backbone

__all__ = [
    "checkpoint",
    "TrainingConfig",
    "URCLConfig",
    "collect_predictions",
    "evaluate_classical",
    "evaluate_model",
    "PredictionMetrics",
    "compute_metrics",
    "mae",
    "mape",
    "rmse",
    "ContinualResult",
    "SetResult",
    "EWCStrategy",
    "ClassicalRefitStrategy",
    "FinetuneSTStrategy",
    "OneFitAllStrategy",
    "StreamingStrategy",
    "fit_on_dataset",
    "ContinualTrainer",
    "StepOutput",
    "URCLModel",
    "build_backbone",
]
