"""Mini-batch loader over windowed spatio-temporal datasets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..exceptions import DataError
from ..utils.random import get_rng
from .dataset import STDataset

__all__ = ["Batch", "DataLoader"]


@dataclass(frozen=True)
class Batch:
    """A batch of supervised windows.

    ``inputs`` has shape ``(batch, M, nodes, channels)`` and ``targets`` has
    shape ``(batch, H, nodes, target_channels)``.  ``indices`` are the window
    indices in the source dataset (useful for replay bookkeeping).
    """

    inputs: np.ndarray
    targets: np.ndarray
    indices: np.ndarray

    def __len__(self) -> int:
        return self.inputs.shape[0]


class DataLoader:
    """Iterate mini-batches over an :class:`STDataset`.

    Parameters
    ----------
    dataset:
        Source windowed dataset.
    batch_size:
        Number of windows per batch.
    shuffle:
        Whether to shuffle window order each epoch.  The paper's Algorithm 1
        selects batches sequentially from the stream *periods*; within a
        period the continual trainer passes
        ``shuffle=TrainingConfig.shuffle_batches`` (``True`` by default) so
        that capped epochs (``max_batches_per_epoch``) still see windows from
        the whole period rather than only its earliest windows.
    drop_last:
        Drop the final smaller batch when the dataset size is not a multiple
        of ``batch_size``.
    """

    def __init__(
        self,
        dataset: STDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        rng=None,
    ):
        if batch_size < 1:
            raise DataError("batch_size must be >= 1")
        if len(dataset) == 0:
            raise DataError("dataset has no windows to iterate")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = get_rng(rng)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def draw_order(self) -> np.ndarray:
        """Draw this epoch's window order (advances the RNG when shuffling).

        Exposed separately from iteration so the continual trainer can
        persist the order in mid-epoch checkpoints: on resume the saved
        order is replayed through :meth:`iter_batches` instead of being
        re-drawn (the restored RNG stream has already consumed it).
        """
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        return order

    def __iter__(self) -> Iterator[Batch]:
        return self.iter_batches(self.draw_order())

    def iter_batches(self, order: np.ndarray, start_batch: int = 0) -> Iterator[Batch]:
        """Iterate batches over an explicit window ``order``.

        ``start_batch`` skips that many leading batches while keeping the
        absolute batch positions (a mid-epoch resume continues at batch
        ``b + 1`` of the *same* order).
        """
        order = np.asarray(order, dtype=int)
        # Only STDataset guarantees batch() semantics; duck-typed datasets
        # (documented __len__/__getitem__ protocol) use per-window gathering
        # even if they happen to carry an unrelated ``batch`` attribute.  An
        # STDataset subclass that overrides __getitem__ without overriding
        # batch() must also fall back, or the fast path would silently skip
        # the override.
        dataset_type = type(self.dataset)
        use_fast_path = isinstance(self.dataset, STDataset) and (
            dataset_type.__getitem__ is STDataset.__getitem__
            or dataset_type.batch is not STDataset.batch
        )
        gather = self.dataset.batch if use_fast_path else None
        for start in range(start_batch * self.batch_size, len(order), self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and indices.size < self.batch_size:
                break
            if gather is not None:
                # One vectorised gather over the dataset's strided window
                # views instead of a per-window Python loop.
                inputs, targets = gather(indices)
            else:
                windows = [self.dataset[int(i)] for i in indices]
                inputs = np.stack([w.inputs for w in windows])
                targets = np.stack([w.targets for w in windows])
            yield Batch(inputs=inputs, targets=targets, indices=indices)
