"""Data substrate: observations, windowed datasets, synthetic benchmarks,
streaming protocol and batching."""

from .dataset import STDataset, STWindow
from .datasets import (
    DATASET_SPECS,
    DatasetSpec,
    TrafficDataset,
    list_datasets,
    load_dataset,
)
from .loader import Batch, DataLoader
from .scalers import SCALERS, IdentityScaler, MinMaxScaler, Scaler, StandardScaler, build_scaler
from .streaming import (
    StreamingScenario,
    StreamSet,
    build_streaming_scenario,
    incremental_set_names,
)
from .synthetic import SyntheticTrafficGenerator, TrafficProfile

__all__ = [
    "STDataset",
    "STWindow",
    "DATASET_SPECS",
    "DatasetSpec",
    "TrafficDataset",
    "list_datasets",
    "load_dataset",
    "Batch",
    "DataLoader",
    "Scaler",
    "IdentityScaler",
    "MinMaxScaler",
    "StandardScaler",
    "SCALERS",
    "build_scaler",
    "StreamingScenario",
    "StreamSet",
    "build_streaming_scenario",
    "incremental_set_names",
    "SyntheticTrafficGenerator",
    "TrafficProfile",
]
