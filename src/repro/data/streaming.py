"""Streaming protocol: base set + incremental sets (Fig. 5, Sec. V-A.4).

The paper's continual-learning setting splits every dataset chronologically
into a base set ``Bset`` (30% of the stream) and four equally sized
incremental sets ``I1..I4``.  Models are trained on each set in order; after
training on a set they are evaluated on that set's held-out test windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import DataError
from ..graph.sensor_network import SensorNetwork
from .dataset import STDataset
from .datasets import DatasetSpec, TrafficDataset
from .scalers import MinMaxScaler, Scaler

__all__ = ["StreamSet", "StreamingScenario", "build_streaming_scenario", "incremental_set_names"]


def incremental_set_names(num_incremental: int) -> list[str]:
    """Canonical set names: ``Bset, I1, I2, ...``."""
    return ["Bset"] + [f"I{i}" for i in range(1, num_incremental + 1)]


@dataclass
class StreamSet:
    """One period of the stream with its chronological train/val/test split."""

    name: str
    train: STDataset
    validation: STDataset
    test: STDataset
    start_step: int
    end_step: int

    @property
    def num_steps(self) -> int:
        return self.end_step - self.start_step


@dataclass
class StreamingScenario:
    """A full continual-learning scenario over one dataset.

    Attributes
    ----------
    sets:
        Ordered stream periods (base set first).
    network:
        The sensor graph shared by every period (node set is fixed, as the
        paper's setting requires).
    scaler:
        Scaler fitted on the base-set training data and applied everywhere.
    spec:
        The originating dataset spec (``None`` for ad-hoc scenarios).
    """

    sets: list[StreamSet]
    network: SensorNetwork
    scaler: Scaler
    spec: DatasetSpec | None = None
    raw_series: np.ndarray | None = field(default=None, repr=False)

    @property
    def base_set(self) -> StreamSet:
        return self.sets[0]

    @property
    def incremental_sets(self) -> list[StreamSet]:
        return self.sets[1:]

    @property
    def set_names(self) -> list[str]:
        return [stream_set.name for stream_set in self.sets]

    @property
    def graph(self):
        """The shared :class:`repro.graph.Graph` view of :attr:`network`.

        One CSR substrate (with its cached diffusion supports and
        transposes) serves every stream period — large-N streaming never
        re-densifies the adjacency per period.
        """
        return self.network.graph

    def __len__(self) -> int:
        return len(self.sets)

    def __iter__(self):
        return iter(self.sets)


def _split_period(
    series: np.ndarray,
    name: str,
    start: int,
    end: int,
    input_steps: int,
    output_steps: int,
    target_channels: tuple[int, ...],
    split_fractions: tuple[float, float, float],
) -> StreamSet:
    dataset = STDataset(
        series[start:end],
        input_steps=input_steps,
        output_steps=output_steps,
        target_channels=target_channels,
    )
    train, validation, test = dataset.split(split_fractions)
    return StreamSet(
        name=name,
        train=train,
        validation=validation,
        test=test,
        start_step=start,
        end_step=end,
    )


def build_streaming_scenario(
    dataset: TrafficDataset,
    base_fraction: float = 0.3,
    num_incremental: int = 4,
    split_fractions: tuple[float, float, float] = (0.7, 0.1, 0.2),
    scaler: Scaler | None = None,
) -> StreamingScenario:
    """Build the paper's streaming protocol over ``dataset``.

    Parameters
    ----------
    dataset:
        Loaded traffic dataset (see :func:`repro.data.load_dataset`).
    base_fraction:
        Fraction of the stream used as the base set (0.3 in the paper).
    num_incremental:
        Number of equally sized incremental sets (4 in the paper).
    split_fractions:
        Chronological train/validation/test fractions inside each set.
    scaler:
        Scaler to fit on the base training series; defaults to min-max
        scaling into ``[0, 1]`` as in the paper.
    """
    if not 0.0 < base_fraction < 1.0:
        raise DataError(f"base_fraction must be in (0, 1), got {base_fraction}")
    if num_incremental < 1:
        raise DataError("num_incremental must be >= 1")
    spec = dataset.spec
    series = np.asarray(dataset.series, dtype=float)
    total_steps = series.shape[0]
    window = spec.input_steps + spec.output_steps
    minimum_per_set = window * 8
    base_steps = int(total_steps * base_fraction)
    incremental_steps = (total_steps - base_steps) // num_incremental
    if base_steps < minimum_per_set or incremental_steps < minimum_per_set:
        raise DataError(
            "stream too short for the requested protocol: "
            f"{total_steps} steps -> base {base_steps}, incremental {incremental_steps}"
        )

    scaler = scaler if scaler is not None else MinMaxScaler()
    scaler.fit(series[: int(base_steps * split_fractions[0])])
    scaled = scaler.transform(series)

    boundaries = [0, base_steps]
    for index in range(1, num_incremental):
        boundaries.append(base_steps + index * incremental_steps)
    boundaries.append(total_steps)

    names = incremental_set_names(num_incremental)
    sets = []
    for name, start, end in zip(names, boundaries[:-1], boundaries[1:]):
        sets.append(
            _split_period(
                scaled,
                name=name,
                start=start,
                end=end,
                input_steps=spec.input_steps,
                output_steps=spec.output_steps,
                target_channels=(spec.target_channel,),
                split_fractions=split_fractions,
            )
        )
    return StreamingScenario(
        sets=sets,
        network=dataset.network,
        scaler=scaler,
        spec=spec,
        raw_series=series,
    )
