"""Feature scalers.

The paper normalises streaming observations into ``[0, 1]`` before feature
learning; the scaler is fitted on the base set only (nothing from the future
leaks into the past) and reused for every incremental set.

All scalers implement the :class:`Scaler` interface.  ``MinMaxScaler`` and
``StandardScaler`` are true siblings of :class:`IdentityScaler` (none of
them *is* another: the previous inheritance from ``IdentityScaler`` meant a
forgotten override silently became a no-op instead of an error).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError

__all__ = [
    "Scaler",
    "MinMaxScaler",
    "StandardScaler",
    "IdentityScaler",
    "SCALERS",
    "build_scaler",
]


class Scaler:
    """Interface for feature scalers.

    ``fit`` learns per-channel statistics (channels live on the last axis),
    ``transform``/``inverse_transform`` map full observation arrays, and
    ``inverse_transform_channel`` maps values belonging to a single original
    channel (predictions usually carry only the target channel while the
    scaler was fitted on all channels).
    """

    def fit(self, data: np.ndarray) -> "Scaler":
        raise NotImplementedError

    def transform(self, data: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def inverse_transform_channel(self, data: np.ndarray, channel: int) -> np.ndarray:
        raise NotImplementedError

    def transform_channel(self, data: np.ndarray, channel: int) -> np.ndarray:
        """Scale values belonging to a single original channel.

        The forward counterpart of :meth:`inverse_transform_channel` —
        needed when incoming targets carry only the target channel (online
        updates) while the scaler was fitted on all channels.
        """
        raise NotImplementedError

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def get_params(self) -> dict:
        """Return the fitted state (plus hyper-parameters) as plain arrays.

        The mapping round-trips through :meth:`set_params`, which is what
        checkpoints use to persist a fitted scaler; unfitted statistics are
        represented as ``None``.
        """
        raise NotImplementedError

    def set_params(self, params: dict) -> "Scaler":
        """Restore state previously captured by :meth:`get_params`."""
        raise NotImplementedError

    @staticmethod
    def _validate_fit_input(data: np.ndarray) -> np.ndarray:
        """Coerce ``data`` to a float array, rejecting degenerate inputs."""
        data = np.asarray(data, dtype=float)
        if data.ndim < 1:
            raise DataError("scaler requires at least a 1-d array")
        if data.size == 0:
            raise DataError("cannot fit a scaler on an empty array")
        return data


class IdentityScaler(Scaler):
    """No-op scaler (useful for ablations and tests)."""

    def fit(self, data: np.ndarray) -> "IdentityScaler":
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        return np.asarray(data, dtype=float)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        return np.asarray(data, dtype=float)

    def inverse_transform_channel(self, data: np.ndarray, channel: int) -> np.ndarray:
        return np.asarray(data, dtype=float)

    def transform_channel(self, data: np.ndarray, channel: int) -> np.ndarray:
        return np.asarray(data, dtype=float)

    def get_params(self) -> dict:
        return {}

    def set_params(self, params: dict) -> "IdentityScaler":
        return self


class MinMaxScaler(Scaler):
    """Per-channel min-max scaling into ``[0, 1]``.

    Statistics are computed over all time steps and nodes separately for
    every channel (last axis).
    """

    def __init__(self, eps: float = 1e-8):
        self.eps = eps
        self.minimum: np.ndarray | None = None
        self.maximum: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "MinMaxScaler":
        data = self._validate_fit_input(data)
        axes = tuple(range(data.ndim - 1))
        self.minimum = data.min(axis=axes)
        self.maximum = data.max(axis=axes)
        return self

    def _check_fitted(self) -> None:
        if self.minimum is None or self.maximum is None:
            raise DataError("scaler must be fitted before use")

    def transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        data = np.asarray(data, dtype=float)
        span = np.maximum(self.maximum - self.minimum, self.eps)
        return (data - self.minimum) / span

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        data = np.asarray(data, dtype=float)
        span = np.maximum(self.maximum - self.minimum, self.eps)
        return data * span + self.minimum

    def inverse_transform_channel(self, data: np.ndarray, channel: int) -> np.ndarray:
        self._check_fitted()
        data = np.asarray(data, dtype=float)
        span = max(float(self.maximum[channel] - self.minimum[channel]), self.eps)
        return data * span + float(self.minimum[channel])

    def transform_channel(self, data: np.ndarray, channel: int) -> np.ndarray:
        self._check_fitted()
        data = np.asarray(data, dtype=float)
        span = max(float(self.maximum[channel] - self.minimum[channel]), self.eps)
        return (data - float(self.minimum[channel])) / span

    def get_params(self) -> dict:
        return {
            "eps": self.eps,
            "minimum": None if self.minimum is None else np.asarray(self.minimum).copy(),
            "maximum": None if self.maximum is None else np.asarray(self.maximum).copy(),
        }

    def set_params(self, params: dict) -> "MinMaxScaler":
        if "eps" in params:
            self.eps = float(params["eps"])
        minimum = params.get("minimum")
        maximum = params.get("maximum")
        self.minimum = None if minimum is None else np.asarray(minimum, dtype=float)
        self.maximum = None if maximum is None else np.asarray(maximum, dtype=float)
        return self


class StandardScaler(Scaler):
    """Per-channel z-score scaling."""

    def __init__(self, eps: float = 1e-8):
        self.eps = eps
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        data = self._validate_fit_input(data)
        axes = tuple(range(data.ndim - 1))
        self.mean = data.mean(axis=axes)
        self.std = np.maximum(data.std(axis=axes), self.eps)
        return self

    def _check_fitted(self) -> None:
        if self.mean is None or self.std is None:
            raise DataError("scaler must be fitted before use")

    def transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(data, dtype=float) - self.mean) / self.std

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(data, dtype=float) * self.std + self.mean

    def inverse_transform_channel(self, data: np.ndarray, channel: int) -> np.ndarray:
        self._check_fitted()
        return np.asarray(data, dtype=float) * float(self.std[channel]) + float(self.mean[channel])

    def transform_channel(self, data: np.ndarray, channel: int) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(data, dtype=float) - float(self.mean[channel])) / float(self.std[channel])

    def get_params(self) -> dict:
        return {
            "eps": self.eps,
            "mean": None if self.mean is None else np.asarray(self.mean).copy(),
            "std": None if self.std is None else np.asarray(self.std).copy(),
        }

    def set_params(self, params: dict) -> "StandardScaler":
        if "eps" in params:
            self.eps = float(params["eps"])
        mean = params.get("mean")
        std = params.get("std")
        self.mean = None if mean is None else np.asarray(mean, dtype=float)
        self.std = None if std is None else np.asarray(std, dtype=float)
        return self


SCALERS: dict[str, type[Scaler]] = {
    "IdentityScaler": IdentityScaler,
    "MinMaxScaler": MinMaxScaler,
    "StandardScaler": StandardScaler,
}


def build_scaler(name: str, params: dict | None = None) -> Scaler:
    """Instantiate a scaler by class name and restore its fitted state.

    The inverse of ``(type(scaler).__name__, scaler.get_params())`` — the
    pair a checkpoint stores.
    """
    if name not in SCALERS:
        raise DataError(f"unknown scaler {name!r}; available: {sorted(SCALERS)}")
    scaler = SCALERS[name]()
    if params:
        scaler.set_params(params)
    return scaler
