"""Feature scalers.

The paper normalises streaming observations into ``[0, 1]`` before feature
learning; the scaler is fitted on the base set only (nothing from the future
leaks into the past) and reused for every incremental set.

All scalers implement the :class:`Scaler` interface.  ``MinMaxScaler`` and
``StandardScaler`` are true siblings of :class:`IdentityScaler` (none of
them *is* another: the previous inheritance from ``IdentityScaler`` meant a
forgotten override silently became a no-op instead of an error).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError

__all__ = ["Scaler", "MinMaxScaler", "StandardScaler", "IdentityScaler"]


class Scaler:
    """Interface for feature scalers.

    ``fit`` learns per-channel statistics (channels live on the last axis),
    ``transform``/``inverse_transform`` map full observation arrays, and
    ``inverse_transform_channel`` maps values belonging to a single original
    channel (predictions usually carry only the target channel while the
    scaler was fitted on all channels).
    """

    def fit(self, data: np.ndarray) -> "Scaler":
        raise NotImplementedError

    def transform(self, data: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def inverse_transform_channel(self, data: np.ndarray, channel: int) -> np.ndarray:
        raise NotImplementedError

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    @staticmethod
    def _validate_fit_input(data: np.ndarray) -> np.ndarray:
        """Coerce ``data`` to a float array, rejecting degenerate inputs."""
        data = np.asarray(data, dtype=float)
        if data.ndim < 1:
            raise DataError("scaler requires at least a 1-d array")
        if data.size == 0:
            raise DataError("cannot fit a scaler on an empty array")
        return data


class IdentityScaler(Scaler):
    """No-op scaler (useful for ablations and tests)."""

    def fit(self, data: np.ndarray) -> "IdentityScaler":
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        return np.asarray(data, dtype=float)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        return np.asarray(data, dtype=float)

    def inverse_transform_channel(self, data: np.ndarray, channel: int) -> np.ndarray:
        return np.asarray(data, dtype=float)


class MinMaxScaler(Scaler):
    """Per-channel min-max scaling into ``[0, 1]``.

    Statistics are computed over all time steps and nodes separately for
    every channel (last axis).
    """

    def __init__(self, eps: float = 1e-8):
        self.eps = eps
        self.minimum: np.ndarray | None = None
        self.maximum: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "MinMaxScaler":
        data = self._validate_fit_input(data)
        axes = tuple(range(data.ndim - 1))
        self.minimum = data.min(axis=axes)
        self.maximum = data.max(axis=axes)
        return self

    def _check_fitted(self) -> None:
        if self.minimum is None or self.maximum is None:
            raise DataError("scaler must be fitted before use")

    def transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        data = np.asarray(data, dtype=float)
        span = np.maximum(self.maximum - self.minimum, self.eps)
        return (data - self.minimum) / span

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        data = np.asarray(data, dtype=float)
        span = np.maximum(self.maximum - self.minimum, self.eps)
        return data * span + self.minimum

    def inverse_transform_channel(self, data: np.ndarray, channel: int) -> np.ndarray:
        self._check_fitted()
        data = np.asarray(data, dtype=float)
        span = max(float(self.maximum[channel] - self.minimum[channel]), self.eps)
        return data * span + float(self.minimum[channel])


class StandardScaler(Scaler):
    """Per-channel z-score scaling."""

    def __init__(self, eps: float = 1e-8):
        self.eps = eps
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        data = self._validate_fit_input(data)
        axes = tuple(range(data.ndim - 1))
        self.mean = data.mean(axis=axes)
        self.std = np.maximum(data.std(axis=axes), self.eps)
        return self

    def _check_fitted(self) -> None:
        if self.mean is None or self.std is None:
            raise DataError("scaler must be fitted before use")

    def transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(data, dtype=float) - self.mean) / self.std

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(data, dtype=float) * self.std + self.mean

    def inverse_transform_channel(self, data: np.ndarray, channel: int) -> np.ndarray:
        self._check_fitted()
        return np.asarray(data, dtype=float) * float(self.std[channel]) + float(self.mean[channel])
