"""Dataset registry: synthetic analogues of the paper's four benchmarks.

Table I of the paper lists METR-LA, PEMS-BAY, PEMS04 and PEMS08.  The
registry reproduces their node counts, channel conventions, sampling
intervals and input/output steps; the observations themselves are produced
by :class:`~repro.data.synthetic.SyntheticTrafficGenerator` because the real
downloads are not reachable offline (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..exceptions import DataError
from ..graph.generators import community_network, corridor_network, grid_network
from ..graph.sensor_network import SensorNetwork
from ..utils.random import get_rng
from .dataset import STDataset
from .synthetic import SyntheticTrafficGenerator, TrafficProfile

__all__ = ["DatasetSpec", "TrafficDataset", "DATASET_SPECS", "list_datasets", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one benchmark dataset (a Table I row)."""

    name: str
    area: str
    task: str  # "speed" or "flow"
    num_nodes: int
    channels: tuple[str, ...]
    interval_minutes: int
    time_span_days: int
    input_steps: int = 12
    output_steps: int = 1
    topology: str = "corridor"  # corridor | grid | community

    @property
    def target_channel(self) -> int:
        """Index of the predicted channel (speed for speed datasets, flow otherwise)."""
        return self.channels.index(self.task)

    @property
    def num_channels(self) -> int:
        return len(self.channels)


@dataclass
class TrafficDataset:
    """A loaded dataset: raw series, sensor network and its spec."""

    spec: DatasetSpec
    series: np.ndarray  # (time, nodes, channels)
    network: SensorNetwork

    @property
    def name(self) -> str:
        return self.spec.name

    def to_windows(self, stride: int = 1) -> STDataset:
        """Wrap the raw series into the supervised windowed view."""
        return STDataset(
            self.series,
            input_steps=self.spec.input_steps,
            output_steps=self.spec.output_steps,
            target_channels=(self.spec.target_channel,),
            stride=stride,
        )


DATASET_SPECS: dict[str, DatasetSpec] = {
    "metr-la": DatasetSpec(
        name="metr-la",
        area="Los Angeles",
        task="speed",
        num_nodes=207,
        channels=("speed", "flow"),
        interval_minutes=15,
        time_span_days=120,
        topology="grid",
    ),
    "pems-bay": DatasetSpec(
        name="pems-bay",
        area="California (Bay Area)",
        task="speed",
        num_nodes=325,
        channels=("speed", "flow"),
        interval_minutes=15,
        time_span_days=150,
        topology="corridor",
    ),
    "pems04": DatasetSpec(
        name="pems04",
        area="San Francisco Bay",
        task="flow",
        num_nodes=307,
        channels=("flow", "speed", "occupancy"),
        interval_minutes=5,
        time_span_days=59,
        topology="corridor",
    ),
    "pems08": DatasetSpec(
        name="pems08",
        area="San Bernardino",
        task="flow",
        num_nodes=170,
        channels=("flow", "speed", "occupancy"),
        interval_minutes=5,
        time_span_days=62,
        topology="community",
    ),
}


def list_datasets() -> list[str]:
    """Names of the registered benchmark datasets."""
    return sorted(DATASET_SPECS)


def _build_network(spec: DatasetSpec, rng) -> SensorNetwork:
    if spec.topology == "grid":
        cols = int(np.ceil(np.sqrt(spec.num_nodes)))
        rows = int(np.ceil(spec.num_nodes / cols))
        network = grid_network(rows, cols, rng=rng, name=spec.name)
        if network.num_nodes > spec.num_nodes:
            network = network.subgraph(np.arange(spec.num_nodes))
        return network
    if spec.topology == "community":
        return community_network(spec.num_nodes, rng=rng, name=spec.name)
    return corridor_network(spec.num_nodes, rng=rng, name=spec.name)


def load_dataset(
    name: str,
    num_days: int | None = None,
    num_nodes: int | None = None,
    drift: bool = True,
    profile_overrides: dict | None = None,
    seed: int | None = 7,
) -> TrafficDataset:
    """Load (generate) a synthetic analogue of one benchmark dataset.

    Parameters
    ----------
    name:
        One of :func:`list_datasets` (case-insensitive).
    num_days:
        Length of the generated stream; defaults to the paper's time span
        but can be reduced drastically for tests and benchmarks.
    num_nodes:
        Optional override of the sensor count (scaled-down experiments).
    drift:
        Whether to apply concept drift along the stream (the phenomenon the
        continual-learning framework targets).
    profile_overrides:
        Optional keyword overrides applied to the :class:`TrafficProfile`.
    seed:
        Seed controlling topology and traffic realisation.
    """
    key = name.lower()
    if key not in DATASET_SPECS:
        raise DataError(f"unknown dataset {name!r}; available: {list_datasets()}")
    spec = DATASET_SPECS[key]
    if num_nodes is not None:
        if num_nodes < 2:
            raise DataError("num_nodes override must be >= 2")
        spec = replace(spec, num_nodes=num_nodes)
    if num_days is not None:
        if num_days < 1:
            raise DataError("num_days must be >= 1")
        spec = replace(spec, time_span_days=num_days)

    rng = get_rng(seed)
    network = _build_network(spec, rng)
    profile_kwargs = {"interval_minutes": spec.interval_minutes}
    if profile_overrides:
        profile_kwargs.update(profile_overrides)
    profile = TrafficProfile(**profile_kwargs)
    generator = SyntheticTrafficGenerator(network, profile=profile, rng=rng)
    num_steps = spec.time_span_days * profile.steps_per_day
    series = generator.generate(num_steps, channels=spec.channels, drift=drift)
    return TrafficDataset(spec=spec, series=series, network=network)
