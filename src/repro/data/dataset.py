"""Windowed spatio-temporal datasets.

A raw streaming spatio-temporal sequence is an array of shape
``(time, nodes, channels)`` (Definitions 2–3).  :class:`STDataset` turns it
into supervised windows: ``M`` historical observations as input and the next
``H`` observations of the target channel as output (the SSTP problem,
Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError
from ..tensor import get_default_dtype

__all__ = ["STWindow", "STDataset"]


@dataclass(frozen=True)
class STWindow:
    """One supervised sample: ``M`` input steps and ``H`` target steps."""

    inputs: np.ndarray  # (M, nodes, channels)
    targets: np.ndarray  # (H, nodes, target_channels)
    start_index: int  # index of the first input step in the source series


class STDataset:
    """Sliding-window view over a ``(time, nodes, channels)`` series.

    Parameters
    ----------
    series:
        Raw observations, shape ``(time, nodes, channels)``.
    input_steps:
        Number of historical steps ``M`` fed to the model (12 in Table I).
    output_steps:
        Number of future steps ``H`` to predict (1 in Table I).
    target_channels:
        Channel indices predicted; defaults to channel 0 (speed for the
        speed datasets, flow for the flow datasets).
    stride:
        Step between consecutive windows.
    """

    def __init__(
        self,
        series: np.ndarray,
        input_steps: int = 12,
        output_steps: int = 1,
        target_channels: tuple[int, ...] = (0,),
        stride: int = 1,
    ):
        # Stored at the library default dtype so batches feed the tensor
        # engine without a per-batch cast (see repro.tensor.set_default_dtype).
        series = np.asarray(series, dtype=get_default_dtype())
        if series.ndim != 3:
            raise DataError(f"series must be (time, nodes, channels), got {series.shape}")
        if input_steps < 1 or output_steps < 1:
            raise DataError("input_steps and output_steps must be >= 1")
        if stride < 1:
            raise DataError("stride must be >= 1")
        if series.shape[0] < input_steps + output_steps:
            raise DataError(
                f"series with {series.shape[0]} steps cannot host windows of "
                f"{input_steps}+{output_steps} steps"
            )
        channels = series.shape[2]
        for channel in target_channels:
            if not 0 <= channel < channels:
                raise DataError(f"target channel {channel} out of range [0, {channels})")
        self.series = series
        self.input_steps = input_steps
        self.output_steps = output_steps
        self.target_channels = tuple(target_channels)
        self.stride = stride
        # Lazily built strided views (zero-copy) over the series; one fancy
        # gather over them materialises a whole batch.
        self._input_view: np.ndarray | None = None
        self._target_view: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.series.shape[1]

    @property
    def num_channels(self) -> int:
        return self.series.shape[2]

    @property
    def num_steps(self) -> int:
        return self.series.shape[0]

    def __len__(self) -> int:
        usable = self.num_steps - self.input_steps - self.output_steps + 1
        if usable <= 0:
            return 0
        return (usable + self.stride - 1) // self.stride

    def __getitem__(self, index: int) -> STWindow:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"window index {index} out of range for {len(self)} windows")
        start = index * self.stride
        end = start + self.input_steps
        inputs = self.series[start:end]
        targets = self.series[end : end + self.output_steps][:, :, list(self.target_channels)]
        return STWindow(inputs=inputs, targets=targets, start_index=start)

    def windows(self) -> list[STWindow]:
        """Materialise all windows (used by small evaluation sets)."""
        return [self[i] for i in range(len(self))]

    # ------------------------------------------------------------------ #
    def _window_views(self) -> tuple[np.ndarray, np.ndarray]:
        """Strided sliding-window views over the series (built once).

        Returns ``(input_view, target_view)`` where ``input_view[t]`` is the
        ``M``-step input window starting at time ``t`` (a zero-copy view of
        ``series``) and ``target_view[t]`` is the ``H``-step target window
        starting at time ``t`` (a view of a cached target-channel gather).
        """
        if self._input_view is None:
            swv = np.lib.stride_tricks.sliding_window_view(
                self.series, self.input_steps, axis=0
            )
            # (T-M+1, nodes, channels, M) -> (T-M+1, M, nodes, channels)
            self._input_view = np.moveaxis(swv, -1, 1)
            channels = self.target_channels
            if channels and channels == tuple(range(channels[0], channels[-1] + 1)):
                # Contiguous channels (the common (0,) case): a basic slice
                # keeps this a zero-copy view of the series.
                target_series = self.series[:, :, channels[0] : channels[-1] + 1]
            else:
                target_series = self.series[:, :, list(channels)]
            tswv = np.lib.stride_tricks.sliding_window_view(
                target_series, self.output_steps, axis=0
            )
            self._target_view = np.moveaxis(tswv, -1, 1)
        return self._input_view, self._target_view

    def batch(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather the windows at ``indices`` into dense batch arrays.

        One vectorised gather over the precomputed strided views replaces a
        per-window Python loop; shapes are ``(batch, M, nodes, channels)``
        and ``(batch, H, nodes, target_channels)``.
        """
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self)):
            raise IndexError(
                f"window indices out of range [0, {len(self)}) in batch request"
            )
        starts = indices * self.stride
        input_view, target_view = self._window_views()
        return input_view[starts], target_view[starts + self.input_steps]

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return all inputs/targets stacked into dense arrays.

        Shapes: ``(num_windows, M, nodes, channels)`` and
        ``(num_windows, H, nodes, target_channels)``.
        """
        if len(self) == 0:
            raise DataError("dataset has no windows")
        return self.batch(np.arange(len(self)))

    # ------------------------------------------------------------------ #
    def slice_steps(self, start: int, stop: int) -> "STDataset":
        """Return a new dataset over ``series[start:stop]`` (same windowing)."""
        return STDataset(
            self.series[start:stop],
            input_steps=self.input_steps,
            output_steps=self.output_steps,
            target_channels=self.target_channels,
            stride=self.stride,
        )

    def split(self, fractions: tuple[float, float, float] = (0.7, 0.1, 0.2)) -> tuple[
        "STDataset", "STDataset", "STDataset"
    ]:
        """Chronological train/validation/test split of the underlying series."""
        if abs(sum(fractions) - 1.0) > 1e-6:
            raise DataError(f"split fractions must sum to 1, got {fractions}")
        total = self.num_steps
        train_end = int(total * fractions[0])
        val_end = train_end + int(total * fractions[1])
        minimum = self.input_steps + self.output_steps
        train_end = max(train_end, minimum)
        val_end = max(val_end, train_end + minimum)
        if total - val_end < minimum:
            raise DataError("series too short for the requested split")
        return (
            self.slice_steps(0, train_end),
            self.slice_steps(train_end, val_end),
            self.slice_steps(val_end, total),
        )

    def with_series(self, series: np.ndarray) -> "STDataset":
        """Return a dataset with the same windowing over a different series."""
        return STDataset(
            series,
            input_steps=self.input_steps,
            output_steps=self.output_steps,
            target_channels=self.target_channels,
            stride=self.stride,
        )
