"""Synthetic streaming traffic generators.

The public METR-LA / PEMS-BAY / PEMS04 / PEMS08 downloads are unavailable in
this offline environment, so these generators produce seeded synthetic
analogues that preserve the statistical properties the URCL framework is
sensitive to:

* **daily periodicity** — morning/evening congestion peaks per sensor;
* **weekly structure** — weekends carry less traffic;
* **spatial correlation** — node profiles are smoothed over the sensor
  graph, so neighbouring sensors behave similarly;
* **autocorrelated noise** — AR(1) measurement noise plus random incidents;
* **concept drift** — the peak amplitude, phase and baseline drift over the
  stream's lifetime, which is exactly what causes catastrophic forgetting in
  the static baselines (Sec. V-B.1).

Channel conventions follow the paper: speed datasets expose
``(speed, flow)`` and flow datasets expose ``(flow, speed, occupancy)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.adjacency import row_normalize
from ..graph.sensor_network import SensorNetwork
from ..utils.random import get_rng

__all__ = ["TrafficProfile", "SyntheticTrafficGenerator"]

MINUTES_PER_DAY = 24 * 60


@dataclass
class TrafficProfile:
    """Parameters controlling the synthetic traffic process."""

    interval_minutes: int = 5
    free_flow_speed: float = 65.0          # mph, typical highway free-flow speed
    peak_flow: float = 450.0               # vehicles per interval at the busiest sensor
    morning_peak_hour: float = 8.0
    evening_peak_hour: float = 17.5
    peak_width_hours: float = 1.8
    weekend_factor: float = 0.6            # demand multiplier on weekends
    noise_scale: float = 0.04              # relative AR(1) noise level
    noise_persistence: float = 0.8         # AR(1) coefficient
    incident_rate: float = 0.002           # probability of an incident per node per step
    incident_duration_steps: int = 12
    incident_severity: float = 0.5         # fraction of capacity lost during an incident
    spatial_smoothing: int = 2             # diffusion rounds over the sensor graph
    drift_strength: float = 0.8            # total relative drift across the whole stream
    drift_phase_hours: float = 2.5         # how far the peaks move by the end of the stream

    @property
    def steps_per_day(self) -> int:
        return MINUTES_PER_DAY // self.interval_minutes


class SyntheticTrafficGenerator:
    """Generate streaming traffic observations over a sensor network.

    Parameters
    ----------
    network:
        The sensor graph; its adjacency drives spatial smoothing.
    profile:
        Process parameters (see :class:`TrafficProfile`).
    rng:
        Seed or generator for reproducibility.
    """

    def __init__(self, network: SensorNetwork, profile: TrafficProfile | None = None, rng=None):
        self.network = network
        self.profile = profile or TrafficProfile()
        self._rng = get_rng(rng)
        self._node_traits = self._draw_node_traits()

    # ------------------------------------------------------------------ #
    # Node-level heterogeneity
    # ------------------------------------------------------------------ #
    def _draw_node_traits(self) -> dict[str, np.ndarray]:
        """Per-sensor demand levels and peak offsets, smoothed over the graph.

        Two independent trait vectors ("early" and "late" regimes) are drawn
        for the demand pattern; the generator interpolates between them as
        the stream progresses, which is the concept drift that makes static
        models stale and fine-tuned models forget (Sec. I, Challenge I).
        """
        rng = self._rng
        nodes = self.network.num_nodes
        demand_early = rng.uniform(0.45, 1.0, size=nodes)
        demand_late = rng.uniform(0.45, 1.0, size=nodes)
        morning_shift = rng.normal(0.0, 0.6, size=nodes)
        evening_shift = rng.normal(0.0, 0.6, size=nodes)
        capacity = rng.uniform(0.75, 1.0, size=nodes)
        transition = row_normalize(self.network.adjacency + np.eye(nodes))
        for _ in range(max(self.profile.spatial_smoothing, 0)):
            demand_early = transition @ demand_early
            demand_late = transition @ demand_late
            morning_shift = transition @ morning_shift
            evening_shift = transition @ evening_shift
            capacity = transition @ capacity
        return {
            "demand_early": demand_early,
            "demand_late": demand_late,
            "morning_shift": morning_shift,
            "evening_shift": evening_shift,
            "capacity": capacity,
        }

    # ------------------------------------------------------------------ #
    # Demand process
    # ------------------------------------------------------------------ #
    def _daily_demand(self, hours: np.ndarray, drift: np.ndarray) -> np.ndarray:
        """Relative demand in ``[0, 1]`` for every (step, node) pair.

        ``hours`` has shape ``(steps,)`` (hour of day), ``drift`` has shape
        ``(steps,)`` in ``[0, 1]`` and moves the peaks / scales demand to
        induce concept drift over the stream.
        """
        profile = self.profile
        traits = self._node_traits
        hours = hours[:, None]
        drift = drift[:, None]
        morning_center = (
            profile.morning_peak_hour
            + traits["morning_shift"][None, :]
            + drift * profile.drift_phase_hours
        )
        evening_center = (
            profile.evening_peak_hour
            + traits["evening_shift"][None, :]
            - drift * profile.drift_phase_hours
        )
        width = profile.peak_width_hours
        morning = np.exp(-0.5 * ((hours - morning_center) / width) ** 2)
        evening = np.exp(-0.5 * ((hours - evening_center) / width) ** 2)
        # Drift also rebalances which peak dominates (e.g. commute patterns change).
        morning_weight = 1.0 - 0.4 * drift * self.profile.drift_strength
        evening_weight = 0.8 + 0.5 * drift * self.profile.drift_strength
        base = 0.18 + 0.06 * np.sin(2 * np.pi * hours / 24.0)
        demand = base + morning_weight * morning + evening_weight * evening
        # The spatial demand pattern itself migrates from the "early" regime
        # to the "late" regime over the lifetime of the stream.
        regime = drift * profile.drift_strength
        node_demand = (
            (1.0 - regime) * traits["demand_early"][None, :]
            + regime * traits["demand_late"][None, :]
        )
        demand = demand * node_demand
        # Baseline demand grows (or shrinks) over the stream.
        demand = demand * (1.0 + profile.drift_strength * (drift - 0.5))
        return np.clip(demand, 0.0, None)

    def _weekly_factor(self, day_index: np.ndarray) -> np.ndarray:
        """Weekend demand reduction, shape ``(steps,)``."""
        weekday = day_index % 7
        is_weekend = (weekday >= 5).astype(float)
        return 1.0 - is_weekend * (1.0 - self.profile.weekend_factor)

    def _ar1_noise(self, steps: int) -> np.ndarray:
        """AR(1) multiplicative noise, shape ``(steps, nodes)``."""
        profile = self.profile
        nodes = self.network.num_nodes
        noise = np.zeros((steps, nodes))
        innovations = self._rng.normal(0.0, profile.noise_scale, size=(steps, nodes))
        for step in range(1, steps):
            noise[step] = profile.noise_persistence * noise[step - 1] + innovations[step]
        return noise

    def _incidents(self, steps: int) -> np.ndarray:
        """Capacity-loss multiplier in ``[1 - severity, 1]``, shape ``(steps, nodes)``."""
        profile = self.profile
        nodes = self.network.num_nodes
        loss = np.ones((steps, nodes))
        starts = self._rng.random((steps, nodes)) < profile.incident_rate
        for step, node in zip(*np.nonzero(starts)):
            stop = min(step + profile.incident_duration_steps, steps)
            loss[step:stop, node] = np.minimum(
                loss[step:stop, node], 1.0 - profile.incident_severity
            )
        return loss

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate(
        self,
        num_steps: int,
        channels: tuple[str, ...] = ("speed", "flow"),
        drift: bool = True,
    ) -> np.ndarray:
        """Generate ``(num_steps, nodes, len(channels))`` observations.

        ``channels`` may contain ``"speed"``, ``"flow"`` and ``"occupancy"``
        in any order; the returned array follows the requested order.
        """
        if num_steps < 1:
            raise ValueError("num_steps must be >= 1")
        unknown = set(channels) - {"speed", "flow", "occupancy"}
        if unknown:
            raise ValueError(f"unknown channels: {sorted(unknown)}")
        profile = self.profile
        steps_per_day = profile.steps_per_day
        step_index = np.arange(num_steps)
        hours = (step_index % steps_per_day) * profile.interval_minutes / 60.0
        day_index = step_index // steps_per_day
        drift_position = (
            step_index / max(num_steps - 1, 1) if drift else np.zeros(num_steps)
        )

        demand = self._daily_demand(hours, drift_position)
        demand = demand * self._weekly_factor(day_index)[:, None]
        demand = demand * (1.0 + self._ar1_noise(num_steps))
        demand = np.clip(demand, 0.0, None)
        capacity = self._node_traits["capacity"][None, :] * self._incidents(num_steps)

        # Volume/capacity ratio drives both flow and speed (BPR-style curve).
        saturation = np.clip(demand / np.maximum(capacity, 1e-6), 0.0, 1.6)
        flow = profile.peak_flow * np.minimum(saturation, 1.0) * capacity
        speed = profile.free_flow_speed / (1.0 + 0.85 * saturation**4)
        occupancy = np.clip(saturation * 0.55, 0.0, 1.0)

        columns = {"speed": speed, "flow": flow, "occupancy": occupancy}
        series = np.stack([columns[channel] for channel in channels], axis=-1)
        return series
