"""Command-line interface: paper experiments plus the serving workflow.

Experiment reproduction (legacy surface, unchanged)::

    python -m repro table2 --scale smoke --seed 0
    python -m repro fig6 --scale bench --output results/fig6.json
    python -m repro --list

Streaming workflow (train once, kill/resume at any stream-period boundary,
then serve predictions from the same checkpoint)::

    python -m repro train --dataset pems08 --scale smoke --checkpoint-dir ckpt --sets 2
    python -m repro resume --checkpoint-dir ckpt
    python -m repro predict --checkpoint-dir ckpt --num-windows 8 --output preds.json

``--dtype float32`` switches the whole library to single precision before
anything is built (roughly 2x training throughput, see
``benchmarks/bench_hot_path.py``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from .experiments import list_experiments, run_experiment
from .utils.serialization import save_json

__all__ = ["build_parser", "build_serve_parser", "main"]

_SERVE_COMMANDS = (
    "train", "resume", "predict", "serve", "bench-serving", "bench-resilience",
)


def _add_dtype_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dtype",
        choices=("float32", "float64"),
        default=None,
        help="library default dtype (set before anything runs; f32 ~2x faster)",
    )


def _apply_dtype(dtype: str | None) -> None:
    if dtype is not None:
        from .tensor import set_default_dtype

        set_default_dtype(dtype)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the experiment CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'A Unified Replay-Based "
            "Continuous Learning Framework for Spatio-Temporal Prediction on "
            "Streaming Data' (ICDE 2024), or drive the train/resume/predict "
            "serving workflow."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"experiment identifier ({', '.join(list_experiments())})",
    )
    parser.add_argument("--scale", default="bench", help="scale preset: smoke | bench | paper")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--output", default=None, help="optional path for a JSON dump of the raw results"
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    _add_dtype_flag(parser)
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """Parser for the ``train`` / ``resume`` / ``predict`` subcommands."""
    parser = argparse.ArgumentParser(prog="repro")
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser(
        "train", help="continually train a URCL forecaster with durable checkpoints"
    )
    train.add_argument("--dataset", default="pems08", help="registered dataset name")
    train.add_argument("--scale", default="smoke", help="scale preset: smoke | bench | paper")
    train.add_argument("--seed", type=int, default=0, help="random seed")
    train.add_argument(
        "--checkpoint-dir", required=True, help="directory for the checkpoint bundle"
    )
    train.add_argument(
        "--sets",
        type=int,
        default=None,
        help="stop after this many stream periods (resume continues later)",
    )
    _add_dtype_flag(train)

    resume = commands.add_parser(
        "resume", help="continue a checkpointed training run bit-exactly"
    )
    resume.add_argument("--checkpoint-dir", required=True, help="checkpoint to continue from")
    resume.add_argument(
        "--sets", type=int, default=None, help="total stream periods to stop after"
    )

    predict = commands.add_parser(
        "predict", help="serve predictions from a checkpointed forecaster"
    )
    predict.add_argument("--checkpoint-dir", required=True, help="checkpoint to load")
    predict.add_argument(
        "--num-windows",
        type=int,
        default=4,
        help="predict from the most recent windows of the checkpoint's stream",
    )
    predict.add_argument(
        "--input",
        default=None,
        help="optional .npy file of raw windows (batch, time, nodes, channels) "
        "used instead of the regenerated stream",
    )
    predict.add_argument("--batch-size", type=int, default=64, help="inference micro-batch size")
    predict.add_argument(
        "--output", default=None, help="optional path for a JSON dump of the predictions"
    )

    serve = commands.add_parser(
        "serve",
        help="run the async serving engine over a checkpoint with synthetic traffic",
    )
    serve.add_argument("--checkpoint-dir", required=True, help="checkpoint to serve")
    serve.add_argument("--requests", type=int, default=128, help="total requests to serve")
    serve.add_argument("--concurrency", type=int, default=8, help="closed-loop clients")
    serve.add_argument("--max-batch-size", type=int, default=16, help="micro-batch flush size")
    serve.add_argument("--max-delay-ms", type=float, default=5.0, help="micro-batch flush deadline")
    serve.add_argument("--workers", type=int, default=2, help="engine workers (threads or processes)")
    serve.add_argument("--shards", type=int, default=1, help="node shards (replicate mode)")
    serve.add_argument(
        "--engine", choices=("thread", "process"), default="thread",
        help="worker plane: in-process threads or shared-memory worker processes",
    )
    serve.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"), default=None,
        help="multiprocessing start method for --engine process "
        "(default: REPRO_PROC_START_METHOD or fork)",
    )
    serve.add_argument(
        "--rate", type=float, default=None,
        help="open-loop offered rate in req/s (default: closed loop at --concurrency)",
    )
    serve.add_argument(
        "--duration", type=float, default=None,
        help="sustained run: keep issuing for this many seconds instead of "
        "stopping at --requests",
    )
    serve.add_argument(
        "--num-windows", type=int, default=16,
        help="distinct request windows replayed from the checkpoint's stream",
    )
    serve.add_argument("--output", default=None, help="optional JSON dump of the serving stats")

    bench = commands.add_parser(
        "bench-serving",
        help="sweep batching x tenants x shards on a synthetic multi-tenant scenario",
    )
    bench.add_argument("--tenants", type=int, default=2, help="synthetic tenants")
    bench.add_argument("--shards", type=int, default=2, help="max node shards in the sweep")
    bench.add_argument("--concurrency", type=int, default=32, help="closed-loop clients")
    bench.add_argument("--requests", type=int, default=256, help="requests per sweep point")
    bench.add_argument("--nodes", type=int, default=12, help="synthetic sensor count")
    bench.add_argument("--seed", type=int, default=0, help="random seed")
    bench.add_argument(
        "--engine", choices=("thread", "process"), default="thread",
        help="worker plane to sweep (process = shared-memory worker processes)",
    )
    bench.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"), default=None,
        help="multiprocessing start method for --engine process",
    )
    bench.add_argument("--output", default=None, help="optional JSON dump of the sweep")
    _add_dtype_flag(bench)

    chaos = commands.add_parser(
        "bench-resilience",
        help="drive a seeded fault storm through the engine and measure recovery",
    )
    chaos.add_argument("--tenants", type=int, default=2, help="synthetic tenants")
    chaos.add_argument("--concurrency", type=int, default=8, help="closed-loop clients")
    chaos.add_argument("--requests", type=int, default=128, help="requests per phase")
    chaos.add_argument("--nodes", type=int, default=12, help="synthetic sensor count")
    chaos.add_argument("--seed", type=int, default=0, help="fault plan + fixture seed")
    chaos.add_argument("--output", default=None, help="optional JSON dump of the record")
    _add_dtype_flag(chaos)
    return parser


# ---------------------------------------------------------------------- #
# Serving workflow
# ---------------------------------------------------------------------- #
def _print_result(result) -> None:
    print(f"{result.method} on {result.dataset}: MAE per stream period")
    for name, mae in result.mae_by_set().items():
        print(f"  {name:>4}: {mae:9.4f}")


def _rebuild_scenario(info: dict):
    from .experiments.common import make_scenario

    return make_scenario(info["dataset"], info["scale"], seed=int(info["seed"]))


def _cmd_train(args: argparse.Namespace) -> int:
    _apply_dtype(args.dtype)
    from .core.trainer import ContinualTrainer
    from .experiments.common import make_scenario, make_training, make_urcl

    scenario_info = {"dataset": args.dataset, "scale": args.scale, "seed": args.seed + 7}
    scenario = _rebuild_scenario(scenario_info)
    training = make_training(args.scale, seed=args.seed)
    model = make_urcl(scenario, args.scale, seed=args.seed)
    trainer = ContinualTrainer(model, training)
    result = trainer.run(
        scenario,
        checkpoint_dir=args.checkpoint_dir,
        max_sets=args.sets,
        scenario_info=scenario_info,
    )
    _print_result(result)
    remaining = len(scenario.sets) - trainer.completed_sets
    if remaining:
        print(f"stopped after {trainer.completed_sets} sets ({remaining} remaining); "
              f"continue with: repro resume --checkpoint-dir {args.checkpoint_dir}")
    print(f"checkpoint written to {args.checkpoint_dir}")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from .core.trainer import ContinualTrainer
    from .utils.checkpoint import Checkpoint

    checkpoint = Checkpoint.load(args.checkpoint_dir)
    info = checkpoint.meta.get("scenario")
    if info is None:
        print("checkpoint does not record its scenario; resume it programmatically "
              "with ContinualTrainer.resume(path, scenario)", file=sys.stderr)
        return 1
    # Restore the dtype before regenerating the stream so every downstream
    # allocation matches the checkpointed run.
    _apply_dtype(checkpoint.meta.get("dtype"))
    scenario = _rebuild_scenario(info)
    trainer = ContinualTrainer.resume(checkpoint, scenario)
    if trainer.completed_sets >= len(scenario.sets):
        print("checkpointed run is already complete")
        _print_result(trainer.run(scenario))
        return 0
    result = trainer.run(
        scenario,
        checkpoint_dir=args.checkpoint_dir,
        max_sets=args.sets,
        scenario_info=info,
    )
    _print_result(result)
    print(f"checkpoint updated at {args.checkpoint_dir}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from .serve import Forecaster
    from .utils.checkpoint import Checkpoint

    checkpoint = Checkpoint.load(args.checkpoint_dir)
    forecaster = Forecaster.load(checkpoint)
    if args.input is not None:
        windows = np.load(args.input)
    else:
        info = checkpoint.meta.get("scenario")
        if info is None:
            print("checkpoint does not record its scenario; pass --input with raw "
                  "windows instead", file=sys.stderr)
            return 1
        scenario = _rebuild_scenario(info)
        series = scenario.raw_series
        input_steps = forecaster.model.input_steps
        num_windows = max(int(args.num_windows), 1)
        if series is None or series.shape[0] < input_steps + num_windows - 1:
            print("stream too short for the requested number of windows", file=sys.stderr)
            return 1
        windows = np.stack(
            [
                series[series.shape[0] - input_steps - offset : series.shape[0] - offset]
                for offset in range(num_windows - 1, -1, -1)
            ]
        )
    predictions = forecaster.predict(windows, batch_size=args.batch_size)
    print(
        f"predicted {predictions.shape[0]} window(s) -> shape {predictions.shape}, "
        f"mean {predictions.mean():.4f}, min {predictions.min():.4f}, "
        f"max {predictions.max():.4f}"
    )
    if args.output:
        path = save_json(
            args.output,
            {
                "checkpoint": str(args.checkpoint_dir),
                "shape": list(predictions.shape),
                "predictions": predictions.tolist(),
            },
        )
        print(f"predictions written to {path}")
    return 0


def _windows_from_checkpoint(checkpoint, forecaster, num_windows: int):
    """Replay the most recent raw windows of the checkpoint's stream."""
    info = checkpoint.meta.get("scenario")
    if info is None:
        return None
    scenario = _rebuild_scenario(info)
    series = scenario.raw_series
    input_steps = forecaster.model.input_steps
    num_windows = max(int(num_windows), 1)
    if series is None or series.shape[0] < input_steps + num_windows - 1:
        return None
    return np.stack(
        [
            series[series.shape[0] - input_steps - offset : series.shape[0] - offset]
            for offset in range(num_windows - 1, -1, -1)
        ]
    )


def _print_serving_stats(label: str, result: dict) -> None:
    latency = result["latency_ms"]
    print(
        f"{label}: {result['completed']}/{result['total_requests']} ok, "
        f"{result['throughput_rps']:8.1f} req/s | latency ms "
        f"p50 {latency['p50']:7.2f}  p95 {latency['p95']:7.2f}  p99 {latency['p99']:7.2f}"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import (
        EngineConfig,
        Forecaster,
        ProcessServingEngine,
        ServingEngine,
        run_closed_loop,
        run_open_loop,
    )
    from .utils.checkpoint import Checkpoint

    checkpoint = Checkpoint.load(args.checkpoint_dir)
    forecaster = Forecaster.load(checkpoint)
    windows = _windows_from_checkpoint(checkpoint, forecaster, args.num_windows)
    if windows is None:
        print("checkpoint does not record a replayable scenario; nothing to serve",
              file=sys.stderr)
        return 1
    config = EngineConfig(
        max_batch_size=args.max_batch_size,
        max_delay_ms=args.max_delay_ms,
        num_workers=args.workers,
        shards=args.shards,
    )
    if args.engine == "process":
        engine = ProcessServingEngine(
            forecaster, config, sample_windows=windows[:1],
            start_method=args.start_method,
        )
    else:
        engine = ServingEngine(forecaster, config)
    with engine:
        if args.rate is not None:
            result = run_open_loop(
                engine, windows, rate_rps=args.rate,
                duration_s=args.duration,
                total_requests=None if args.duration is not None else args.requests,
            )
        else:
            result = run_closed_loop(
                engine,
                windows,
                concurrency=args.concurrency,
                total_requests=None if args.duration is not None else args.requests,
                duration_s=args.duration,
            )
        stats = engine.stats()
    label = f"serve[{args.engine}]"
    if result.get("mode") == "open":
        print(f"{label}: offered {result['offered_rps']:.0f} req/s, completed "
              f"{result['completed']}/{result['issued']} "
              f"({result['rejected']} rejected by backpressure)")
    completed_of = result["total_requests"] if result["total_requests"] is not None else result["completed"]
    print(
        f"{label}: {result['completed']}/{completed_of} ok, "
        f"{result['throughput_rps']:8.1f} req/s | latency ms "
        f"p50 {result['latency_ms']['p50']:7.2f}  "
        f"p95 {result['latency_ms']['p95']:7.2f}  p99 {result['latency_ms']['p99']:7.2f}"
    )
    metrics = stats["metrics"]
    print(f"batches: {metrics['batches']} (mean size {metrics['mean_batch_size']:.2f}, "
          f"{metrics['size_flushes']} by size / {metrics['deadline_flushes']} by deadline)")
    if args.output:
        path = save_json(args.output, {"loadgen": result, "engine": stats})
        print(f"serving stats written to {path}")
    return 0


def _cmd_bench_serving(args: argparse.Namespace) -> int:
    _apply_dtype(args.dtype)
    from .serve import build_synthetic_tenants
    from .serve.loadgen import serving_sweep_point

    pool, windows, _ = build_synthetic_tenants(
        num_tenants=args.tenants, num_nodes=args.nodes, seed=args.seed,
        request_windows=min(args.requests, 64),
    )
    tenants = pool.resident
    shard_counts = sorted({1, max(int(args.shards), 1)})
    sweep = []
    for shards in shard_counts:
        for batching in (False, True):
            result = serving_sweep_point(
                pool, windows, tenants, shards=shards, batching=batching,
                concurrency=args.concurrency, total_requests=args.requests,
                engine_kind=args.engine, start_method=args.start_method,
            )
            _print_serving_stats(
                f"{args.engine} shards={shards} batching={'on ' if batching else 'off'}",
                result,
            )
            sweep.append(result)
    unbatched = next(r for r in sweep if r["shards"] == 1 and not r["batching"])
    batched = next(r for r in sweep if r["shards"] == 1 and r["batching"])
    speedup = batched["throughput_rps"] / max(unbatched["throughput_rps"], 1e-9)
    print(f"dynamic batching speedup at concurrency {args.concurrency}: {speedup:.2f}x")
    if args.output:
        path = save_json(args.output, {"sweep": sweep, "batching_speedup": speedup})
        print(f"sweep written to {path}")
    return 0


def _cmd_bench_resilience(args: argparse.Namespace) -> int:
    _apply_dtype(args.dtype)
    from .serve import FaultPlan, build_synthetic_tenants
    from .serve.loadgen import run_fault_storm

    pool, windows, _ = build_synthetic_tenants(
        num_tenants=args.tenants, num_nodes=args.nodes, seed=args.seed,
        request_windows=min(args.requests, 64),
    )
    record = run_fault_storm(
        pool, windows, tenants=pool.resident,
        plan=FaultPlan.storm(seed=args.seed),
        concurrency=args.concurrency, total_requests=args.requests,
    )
    for phase in ("clean", "storm", "post_recovery"):
        _print_serving_stats(phase, record[phase])
    faults = record["faults"]
    print(
        f"injected: {faults.get('crashes', 0)} crashes, "
        f"{faults.get('stalls', 0)} stalls, "
        f"{faults.get('corrupted_windows', 0)} corrupted windows, "
        f"{faults.get('dropped_node_windows', 0)} node dropouts"
    )
    print(
        f"recovery: {record['metrics']['worker_restarts']} worker restarts, "
        f"{record['metrics']['retried']} retried, "
        f"time-to-recover {record['recovery']['time_to_recover_seconds'] * 1e3:.0f} ms, "
        f"post-recovery throughput {record['recovered_throughput_ratio']:.2f}x clean"
    )
    if args.output:
        path = save_json(args.output, record)
        print(f"resilience record written to {path}")
    if record["lost_requests"] != 0:
        print(f"{record['lost_requests']} futures never resolved", file=sys.stderr)
        return 1
    if not record["recovery"]["recovered"]:
        print("engine did not recover after the storm was disarmed", file=sys.stderr)
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SERVE_COMMANDS:
        args = build_serve_parser().parse_args(argv)
        handler = {
            "train": _cmd_train,
            "resume": _cmd_resume,
            "predict": _cmd_predict,
            "serve": _cmd_serve,
            "bench-serving": _cmd_bench_serving,
            "bench-resilience": _cmd_bench_resilience,
        }
        return handler[args.command](args)

    parser = build_parser()
    args = parser.parse_args(argv)
    _apply_dtype(args.dtype)

    if args.list or args.experiment is None:
        for name in list_experiments():
            print(name)
        return 0

    result = run_experiment(args.experiment, scale=args.scale, seed=args.seed)
    print(result.get("formatted", ""))
    if args.output:
        # The formatted text is redundant in the JSON dump and continual-result
        # objects are not JSON-serialisable; keep only plain data.
        payload = {
            key: value
            for key, value in result.items()
            if key not in ("formatted", "continual_results")
        }
        path = save_json(args.output, payload)
        print(f"\nraw results written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
