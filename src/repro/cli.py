"""Command-line interface for running the paper's experiments.

Usage::

    python -m repro table2 --scale smoke --seed 0
    python -m repro fig6 --scale bench --output results/fig6.json
    python -m repro --list
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .experiments import list_experiments, run_experiment
from .utils.serialization import save_json

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the experiment CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'A Unified Replay-Based "
            "Continuous Learning Framework for Spatio-Temporal Prediction on "
            "Streaming Data' (ICDE 2024)."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"experiment identifier ({', '.join(list_experiments())})",
    )
    parser.add_argument("--scale", default="bench", help="scale preset: smoke | bench | paper")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--output", default=None, help="optional path for a JSON dump of the raw results"
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        for name in list_experiments():
            print(name)
        return 0

    result = run_experiment(args.experiment, scale=args.scale, seed=args.seed)
    print(result.get("formatted", ""))
    if args.output:
        # The formatted text is redundant in the JSON dump and continual-result
        # objects are not JSON-serialisable; keep only plain data.
        payload = {
            key: value
            for key, value in result.items()
            if key not in ("formatted", "continual_results")
        }
        path = save_json(args.output, payload)
        print(f"\nraw results written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
