"""Exception hierarchy for the URCL reproduction library.

Serving errors are *structured*: beyond the human-readable message they
carry machine-readable fields (tenant, pending, limit, deadline, ...) so
clients and the engine's metrics can branch on what actually happened
instead of parsing strings.  Fields default to ``None`` when a raise site
has nothing to report.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CheckpointError",
    "ShapeError",
    "DataError",
    "GraphError",
    "BufferError_",
    "TrainingError",
    "PartitionError",
    "ServingError",
    "QueueFull",
    "RateLimited",
    "EngineClosed",
    "DeadlineExceeded",
    "CircuitOpen",
    "InjectedFault",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class CheckpointError(ConfigurationError):
    """Raised when a checkpoint bundle on disk is unreadable or inconsistent.

    Subclasses :class:`ConfigurationError` so existing handlers keep
    working; carries the offending ``path`` and a short ``reason`` tag
    (``"missing"``, ``"truncated"``, ``"version"``, ``"mixed"``,
    ``"injected"``) for structured handling.
    """

    def __init__(self, message: str = "checkpoint is unreadable", *,
                 path=None, reason: str | None = None):
        self.path = None if path is None else str(path)
        self.reason = reason
        super().__init__(message)


class ShapeError(ReproError):
    """Raised when an array has an unexpected shape."""


class DataError(ReproError):
    """Raised when a dataset or observation sequence is malformed."""


class GraphError(ReproError):
    """Raised when a sensor network is malformed or incompatible."""


class BufferError_(ReproError):
    """Raised on invalid replay-buffer operations (the trailing underscore
    avoids shadowing the builtin :class:`BufferError`)."""


class TrainingError(ReproError):
    """Raised when a training loop is asked to do something impossible."""


class PartitionError(ReproError):
    """Raised when exact memory-sharded execution cannot honour its contract.

    Typical raise sites: a spatial mix under an active partition context that
    would require gradients, a dense/global support encountered while
    ``strict`` mode forbids full-width gathers, or a halo exchange whose peer
    shard died mid-round (the original worker exception is chained)."""


class ServingError(ReproError):
    """Base class for serving-engine errors.

    Every subclass takes its message positionally (back-compatible) and
    its structured fields as keywords; :meth:`fields` returns them as a
    plain dict for logging / JSON dumps.
    """

    _FIELDS: tuple[str, ...] = ("tenant",)

    def __init__(self, message: str = "", **fields):
        unknown = set(fields) - set(self._FIELDS)
        if unknown:
            raise TypeError(f"{type(self).__name__} got unknown fields {sorted(unknown)}")
        for name in self._FIELDS:
            setattr(self, name, fields.get(name))
        super().__init__(message)

    def fields(self) -> dict:
        """The structured payload (only fields that were actually set)."""
        return {
            name: getattr(self, name)
            for name in self._FIELDS
            if getattr(self, name) is not None
        }


class QueueFull(ServingError):
    """Raised when the engine's pending-request bound is exceeded.

    Explicit backpressure: clients must shed or retry with backoff instead
    of growing an unbounded queue inside the process.  Fields: ``tenant``,
    ``pending`` (outstanding requests at rejection time), ``limit``
    (the configured ``max_pending``).
    """

    _FIELDS = ("tenant", "pending", "limit")


class RateLimited(QueueFull):
    """Raised when a tenant exceeds its token-bucket admission rate.

    Subclasses :class:`QueueFull` so retry-with-backoff clients treat both
    uniformly; ``rate`` carries the configured requests/second.
    """

    _FIELDS = ("tenant", "pending", "limit", "rate")


class EngineClosed(ServingError):
    """Raised when a request reaches an engine that has been closed.

    Fields: ``tenant``, ``pending`` (requests outstanding at close).
    """

    _FIELDS = ("tenant", "pending")


class DeadlineExceeded(ServingError):
    """Raised (via the request's future) when a deadline passes in queue.

    Fields: ``tenant``, ``deadline_ms`` (the budget the caller gave),
    ``waited_ms`` (how long the request actually sat before expiring).
    """

    _FIELDS = ("tenant", "deadline_ms", "waited_ms")


class CircuitOpen(ServingError):
    """Raised when a tenant's circuit breaker is open and no fallback exists.

    Fields: ``tenant``, ``failures`` (consecutive failures that tripped
    it), ``retry_after_s`` (seconds until the breaker half-opens).
    """

    _FIELDS = ("tenant", "failures", "retry_after_s")


class InjectedFault(ServingError):
    """A deliberately injected failure (see :mod:`repro.serve.faults`).

    Never raised in production paths — only when a
    :class:`~repro.serve.faults.FaultInjector` is armed.  ``kind`` names
    the injected fault (``"worker_crash"``, ...).
    """

    _FIELDS = ("tenant", "kind")
