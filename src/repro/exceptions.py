"""Exception hierarchy for the URCL reproduction library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "DataError",
    "GraphError",
    "BufferError_",
    "TrainingError",
    "ServingError",
    "QueueFull",
    "EngineClosed",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent."""


class ShapeError(ReproError):
    """Raised when an array has an unexpected shape."""


class DataError(ReproError):
    """Raised when a dataset or observation sequence is malformed."""


class GraphError(ReproError):
    """Raised when a sensor network is malformed or incompatible."""


class BufferError_(ReproError):
    """Raised on invalid replay-buffer operations (the trailing underscore
    avoids shadowing the builtin :class:`BufferError`)."""


class TrainingError(ReproError):
    """Raised when a training loop is asked to do something impossible."""


class ServingError(ReproError):
    """Base class for serving-engine errors."""


class QueueFull(ServingError):
    """Raised when the engine's pending-request bound is exceeded.

    Explicit backpressure: clients must shed or retry with backoff instead
    of growing an unbounded queue inside the process.
    """


class EngineClosed(ServingError):
    """Raised when a request reaches an engine that has been closed."""
