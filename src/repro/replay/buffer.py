"""Replay buffer (Sec. IV-B).

The buffer is organised as a bounded FIFO queue (size 256 in the paper) of
previously *learned* observation windows — i.e. raw training pairs before
STMixup — together with their prediction targets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..exceptions import BufferError_
from ..utils.random import get_rng

__all__ = ["BufferEntry", "ReplayBuffer"]


@dataclass(frozen=True)
class BufferEntry:
    """One stored observation window and its target."""

    inputs: np.ndarray  # (M, nodes, channels)
    targets: np.ndarray  # (H, nodes, target_channels)
    set_name: str = ""
    step: int = -1


class ReplayBuffer:
    """Bounded FIFO queue of previously learned observation windows.

    Parameters
    ----------
    capacity:
        Maximum number of stored windows (the paper uses 256).
    rng:
        Generator used for random draws.
    """

    def __init__(self, capacity: int = 256, rng=None):
        if capacity < 1:
            raise BufferError_(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: deque[BufferEntry] = deque(maxlen=capacity)
        self._rng = get_rng(rng)
        self._total_added = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def is_full(self) -> bool:
        return len(self._entries) == self.capacity

    @property
    def total_added(self) -> int:
        """Number of windows ever pushed (including evicted ones)."""
        return self._total_added

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------ #
    def add(self, inputs: np.ndarray, targets: np.ndarray, set_name: str = "", step: int = -1) -> None:
        """Store a single observation window."""
        inputs = np.asarray(inputs, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if inputs.ndim != 3 or targets.ndim != 3:
            raise BufferError_(
                "buffer entries must be single windows of shape (time, nodes, channels); "
                f"got {inputs.shape} and {targets.shape}"
            )
        self._entries.append(
            BufferEntry(inputs=inputs.copy(), targets=targets.copy(), set_name=set_name, step=step)
        )
        self._total_added += 1

    def add_batch(
        self, inputs: np.ndarray, targets: np.ndarray, set_name: str = "", step: int = -1
    ) -> None:
        """Store every window of a batch ``(batch, time, nodes, channels)``."""
        inputs = np.asarray(inputs, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if inputs.ndim != 4 or targets.ndim != 4:
            raise BufferError_(
                "add_batch expects batched windows; "
                f"got {inputs.shape} and {targets.shape}"
            )
        if inputs.shape[0] != targets.shape[0]:
            raise BufferError_("inputs and targets must have the same batch size")
        for sample_inputs, sample_targets in zip(inputs, targets):
            self.add(sample_inputs, sample_targets, set_name=set_name, step=step)

    # ------------------------------------------------------------------ #
    def entries(self) -> list[BufferEntry]:
        """Snapshot of the stored entries (oldest first)."""
        return list(self._entries)

    def get(self, indices: np.ndarray | list[int]) -> tuple[np.ndarray, np.ndarray]:
        """Return stacked ``(inputs, targets)`` for the requested indices."""
        if self.is_empty:
            raise BufferError_("cannot read from an empty buffer")
        entries = list(self._entries)
        inputs = np.stack([entries[int(i)].inputs for i in indices])
        targets = np.stack([entries[int(i)].targets for i in indices])
        return inputs, targets

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return every stored window stacked into dense arrays."""
        if self.is_empty:
            raise BufferError_("cannot read from an empty buffer")
        return self.get(np.arange(len(self)))

    def sample_random(self, size: int) -> tuple[np.ndarray, np.ndarray]:
        """Uniformly sample ``size`` windows (without replacement when possible)."""
        if self.is_empty:
            raise BufferError_("cannot sample from an empty buffer")
        size = min(size, len(self))
        indices = self._rng.choice(len(self), size=size, replace=False)
        return self.get(indices)

    def occupancy_by_set(self) -> dict[str, int]:
        """Histogram of which stream period each stored window came from."""
        histogram: dict[str, int] = {}
        for entry in self._entries:
            histogram[entry.set_name] = histogram.get(entry.set_name, 0) + 1
        return histogram

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Full buffer state: contents, bookkeeping and the RNG stream.

        ``inputs``/``targets`` are stacked into dense arrays (every stored
        window has the same shape in a given scenario); an empty buffer
        stores ``None``.  Loading via :meth:`load_state_dict` restores the
        buffer bit-exactly, including the sampling stream.
        """
        if self._entries:
            inputs, targets = self.as_arrays()
        else:
            inputs, targets = None, None
        return {
            "capacity": self.capacity,
            "total_added": self._total_added,
            "inputs": inputs,
            "targets": targets,
            "set_names": [entry.set_name for entry in self._entries],
            "steps": [entry.step for entry in self._entries],
            "rng_state": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore contents and RNG stream captured by :meth:`state_dict`."""
        capacity = int(state.get("capacity", self.capacity))
        if capacity < 1:
            raise BufferError_(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries = deque(maxlen=capacity)
        inputs = state.get("inputs")
        targets = state.get("targets")
        if inputs is not None and targets is not None:
            inputs = np.asarray(inputs, dtype=float)
            targets = np.asarray(targets, dtype=float)
            if inputs.shape[0] != targets.shape[0]:
                raise BufferError_("buffer state inputs/targets length mismatch")
            set_names = list(state.get("set_names") or [""] * inputs.shape[0])
            steps = list(state.get("steps") or [-1] * inputs.shape[0])
            if len(set_names) != inputs.shape[0] or len(steps) != inputs.shape[0]:
                raise BufferError_("buffer state metadata length mismatch")
            for window_inputs, window_targets, set_name, step in zip(
                inputs, targets, set_names, steps
            ):
                self._entries.append(
                    BufferEntry(
                        inputs=window_inputs.copy(),
                        targets=window_targets.copy(),
                        set_name=str(set_name),
                        step=int(step),
                    )
                )
        self._total_added = int(state.get("total_added", len(self._entries)))
        rng_state = state.get("rng_state")
        if rng_state is not None:
            self._rng.bit_generator.state = rng_state
