"""STMixup — spatio-temporal mixup between current and replayed samples
(Sec. IV-B.2, Eq. 4–5)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ShapeError
from ..utils.random import get_rng

__all__ = ["MixupResult", "STMixup"]


@dataclass(frozen=True)
class MixupResult:
    """Interpolated inputs/targets plus the mixing coefficient used."""

    inputs: np.ndarray
    targets: np.ndarray
    lam: float


class STMixup:
    """Interpolate current observations with replayed observations.

    ``lambda`` is drawn from ``Beta(alpha, alpha)``; the same coefficient is
    applied to inputs and targets (Eq. 4–5), enlarging the support of the
    training distribution across stream periods (vicinal risk minimisation).

    When the replayed batch is smaller than the current batch, replayed
    windows are paired with current windows by uniform resampling.
    """

    def __init__(self, alpha: float = 0.4, rng=None):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha
        self._rng = get_rng(rng)

    def sample_lambda(self) -> float:
        """Draw the Beta(alpha, alpha) interpolation coefficient."""
        return float(self._rng.beta(self.alpha, self.alpha))

    def __call__(
        self,
        current_inputs: np.ndarray,
        current_targets: np.ndarray,
        replay_inputs: np.ndarray | None,
        replay_targets: np.ndarray | None,
        lam: float | None = None,
    ) -> MixupResult:
        current_inputs = np.asarray(current_inputs, dtype=float)
        current_targets = np.asarray(current_targets, dtype=float)
        if replay_inputs is None or replay_targets is None or len(replay_inputs) == 0:
            # Nothing to replay yet (e.g. the very first batches of the base set).
            return MixupResult(current_inputs.copy(), current_targets.copy(), 1.0)
        replay_inputs = np.asarray(replay_inputs, dtype=float)
        replay_targets = np.asarray(replay_targets, dtype=float)
        if current_inputs.shape[1:] != replay_inputs.shape[1:]:
            raise ShapeError(
                "current and replayed windows must share shapes, got "
                f"{current_inputs.shape[1:]} vs {replay_inputs.shape[1:]}"
            )
        if current_targets.shape[1:] != replay_targets.shape[1:]:
            raise ShapeError(
                "current and replayed targets must share shapes, got "
                f"{current_targets.shape[1:]} vs {replay_targets.shape[1:]}"
            )
        batch = current_inputs.shape[0]
        pair_indices = self._rng.integers(0, replay_inputs.shape[0], size=batch)
        paired_inputs = replay_inputs[pair_indices]
        paired_targets = replay_targets[pair_indices]
        lam = self.sample_lambda() if lam is None else float(lam)
        mixed_inputs = lam * current_inputs + (1.0 - lam) * paired_inputs
        mixed_targets = lam * current_targets + (1.0 - lam) * paired_targets
        return MixupResult(mixed_inputs, mixed_targets, lam)
