"""Replay-buffer sampling strategies.

Implements the paper's ranking-based maximally interfered retrieval (RMIR,
Sec. IV-B.1) and the random-sampling baseline used by the ``w/o RMIR``
ablation.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from ..exceptions import BufferError_
from ..tensor import Tensor, no_grad, run_compiled
from ..utils.random import get_rng
from .buffer import ReplayBuffer

__all__ = ["ReplaySampler", "RandomSampler", "RMIRSampler", "pearson_similarity"]


class _PredictiveModel(Protocol):
    """The minimal model surface the RMIR sampler relies on."""

    def forward(self, inputs: Tensor) -> Tensor: ...

    def parameters(self) -> list: ...

    def zero_grad(self) -> None: ...


def pearson_similarity(candidates: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Pearson correlation between each candidate window and a reference window.

    ``candidates`` has shape ``(num_candidates, ...)``; ``reference`` has the
    shape of a single window.  Windows are flattened before correlating.
    """
    flat_candidates = candidates.reshape(candidates.shape[0], -1)
    flat_reference = reference.reshape(-1)
    centred_candidates = flat_candidates - flat_candidates.mean(axis=1, keepdims=True)
    centred_reference = flat_reference - flat_reference.mean()
    numerator = centred_candidates @ centred_reference
    denominator = np.linalg.norm(centred_candidates, axis=1) * np.linalg.norm(centred_reference)
    denominator = np.maximum(denominator, 1e-12)
    return numerator / denominator


class ReplaySampler:
    """Base class for buffer samplers."""

    def __init__(self, rng=None):
        self._rng = get_rng(rng)

    def sample(
        self,
        buffer: ReplayBuffer,
        current_inputs: np.ndarray,
        current_targets: np.ndarray,
        sample_size: int,
        model: _PredictiveModel | None = None,
        loss_fn: Callable[[Tensor, Tensor], Tensor] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class RandomSampler(ReplaySampler):
    """Uniform random retrieval (the ``w/o RMIR`` ablation)."""

    def sample(
        self,
        buffer: ReplayBuffer,
        current_inputs: np.ndarray,
        current_targets: np.ndarray,
        sample_size: int,
        model: _PredictiveModel | None = None,
        loss_fn: Callable[[Tensor, Tensor], Tensor] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if buffer.is_empty:
            raise BufferError_("cannot sample from an empty buffer")
        return buffer.sample_random(sample_size)


class RMIRSampler(ReplaySampler):
    """Ranking-based maximally interfered retrieval (Sec. IV-B.1).

    The sampler scores buffered windows by how much their loss *increases*
    after a virtual (foreseen) gradient step on the current batch (Eq. 3),
    keeps the ``interfered_pool`` most interfered candidates, and finally
    ranks those by Pearson similarity to the current observations, returning
    the ``sample_size`` most similar ones — capturing both interference and
    temporal-periodicity relevance.

    Parameters
    ----------
    virtual_lr:
        Learning rate of the virtual gradient step (``alpha`` in Eq. 3).
    candidate_pool:
        Number of buffered windows scored per call (a random subset keeps
        the sampler's cost bounded for large buffers).
    interfered_pool:
        Number of most-interfered candidates retained before the similarity
        ranking (``|N|`` in the paper, with ``|N| > |S|``).
    """

    def __init__(
        self,
        virtual_lr: float = 0.01,
        candidate_pool: int = 64,
        interfered_pool: int | None = None,
        rng=None,
    ):
        super().__init__(rng=rng)
        if virtual_lr <= 0:
            raise ValueError("virtual_lr must be positive")
        if candidate_pool < 1:
            raise ValueError("candidate_pool must be >= 1")
        self.virtual_lr = virtual_lr
        self.candidate_pool = candidate_pool
        self.interfered_pool = interfered_pool

    # ------------------------------------------------------------------ #
    def _per_sample_loss(
        self,
        model: _PredictiveModel,
        loss_fn: Callable[[Tensor, Tensor], Tensor],
        inputs: np.ndarray,
        targets: np.ndarray,
    ) -> np.ndarray:
        """Loss of every window under the current model parameters."""
        losses = np.zeros(inputs.shape[0])
        with no_grad():
            predictions = run_compiled(model, model.forward, Tensor(inputs), kind="rmir")
            errors = np.abs(predictions.data - targets)
            losses = errors.reshape(errors.shape[0], -1).mean(axis=1)
        return losses

    def _virtual_step(
        self,
        model: _PredictiveModel,
        loss_fn: Callable[[Tensor, Tensor], Tensor],
        inputs: np.ndarray,
        targets: np.ndarray,
    ) -> list[np.ndarray]:
        """Apply the foreseen update in place; return saved originals."""
        model.zero_grad()
        predictions = run_compiled(model, model.forward, Tensor(inputs), kind="train")
        loss = loss_fn(predictions, Tensor(targets))
        loss.backward()
        saved = []
        for parameter in model.parameters():
            saved.append(parameter.data.copy())
            if parameter.grad is not None:
                parameter.data -= self.virtual_lr * parameter.grad
        model.zero_grad()
        return saved

    @staticmethod
    def _restore(model: _PredictiveModel, saved: list[np.ndarray]) -> None:
        for parameter, original in zip(model.parameters(), saved):
            parameter.data[...] = original

    # ------------------------------------------------------------------ #
    def sample(
        self,
        buffer: ReplayBuffer,
        current_inputs: np.ndarray,
        current_targets: np.ndarray,
        sample_size: int,
        model: _PredictiveModel | None = None,
        loss_fn: Callable[[Tensor, Tensor], Tensor] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if buffer.is_empty:
            raise BufferError_("cannot sample from an empty buffer")
        if model is None or loss_fn is None:
            # Without a model there is no interference signal; degrade gracefully.
            return buffer.sample_random(sample_size)
        sample_size = min(sample_size, len(buffer))
        pool_size = min(self.candidate_pool, len(buffer))
        candidate_indices = self._rng.choice(len(buffer), size=pool_size, replace=False)
        candidate_inputs, candidate_targets = buffer.get(candidate_indices)

        # Interference scores: loss increase caused by the foreseen update.
        losses_before = self._per_sample_loss(model, loss_fn, candidate_inputs, candidate_targets)
        saved = self._virtual_step(model, loss_fn, current_inputs, current_targets)
        try:
            losses_after = self._per_sample_loss(
                model, loss_fn, candidate_inputs, candidate_targets
            )
        finally:
            self._restore(model, saved)
        interference = losses_after - losses_before

        interfered_pool = self.interfered_pool or max(2 * sample_size, sample_size)
        interfered_pool = min(interfered_pool, pool_size)
        most_interfered = np.argsort(-interference)[:interfered_pool]

        # Rank the interfered candidates by Pearson similarity with the
        # (average) current observation window — periodic data similar to the
        # present is the most useful to replay.
        reference = current_inputs.mean(axis=0)
        similarity = pearson_similarity(candidate_inputs[most_interfered], reference)
        ranked = most_interfered[np.argsort(-similarity)][:sample_size]
        chosen = candidate_indices[ranked]
        return buffer.get(chosen)
