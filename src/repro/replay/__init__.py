"""Replay machinery: buffer, RMIR/random sampling and STMixup (Sec. IV-B)."""

from .buffer import BufferEntry, ReplayBuffer
from .mixup import MixupResult, STMixup
from .sampling import RandomSampler, ReplaySampler, RMIRSampler, pearson_similarity

__all__ = [
    "BufferEntry",
    "ReplayBuffer",
    "MixupResult",
    "STMixup",
    "RandomSampler",
    "ReplaySampler",
    "RMIRSampler",
    "pearson_similarity",
]
