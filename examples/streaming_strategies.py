"""Compare training strategies on streaming traffic-speed data (Table II style).

Trains the same GraphWaveNet base model under three strategies on a
PEMS-BAY-like speed stream with concept drift:

* ``OneFitAll``  — train once on the base set, never update;
* ``FinetuneST`` — fine-tune on each incremental set;
* ``URCL``       — the paper's replay-based continual framework.

Run with::

    python examples/streaming_strategies.py
"""

from __future__ import annotations

from repro import (
    ContinualTrainer,
    FinetuneSTStrategy,
    OneFitAllStrategy,
    TrainingConfig,
    URCLConfig,
    URCLModel,
    build_streaming_scenario,
    load_dataset,
)
from repro.experiments import format_metric_grid
from repro.models.graphwavenet import GraphWaveNetBackbone


def main() -> None:
    dataset = load_dataset("pems-bay", num_days=12, num_nodes=24, seed=11)
    scenario = build_streaming_scenario(dataset)
    spec = dataset.spec
    training = TrainingConfig(
        epochs_base=3, epochs_incremental=2, batch_size=16,
        max_batches_per_epoch=10, eval_max_windows=96,
    )

    results = {}

    def base_model(seed: int) -> GraphWaveNetBackbone:
        return GraphWaveNetBackbone(
            scenario.network, in_channels=spec.num_channels,
            input_steps=spec.input_steps, output_steps=spec.output_steps, rng=seed,
        )

    print("running OneFitAll ...")
    results["OneFitAll"] = OneFitAllStrategy(training).run(scenario, base_model(0))
    print("running FinetuneST ...")
    results["FinetuneST"] = FinetuneSTStrategy(training).run(scenario, base_model(0))
    print("running URCL ...")
    urcl = URCLModel(
        scenario.network, in_channels=spec.num_channels, input_steps=spec.input_steps,
        config=URCLConfig(buffer_capacity=128, replay_sample_size=8), rng=0,
    )
    results["URCL"] = ContinualTrainer(urcl, training).run(scenario)

    grid = {
        method: {
            entry.name: {"mae": entry.metrics.mae, "rmse": entry.metrics.rmse}
            for entry in result.sets
        }
        for method, result in results.items()
    }
    print()
    print(format_metric_grid(grid, scenario.set_names, metric="mae",
                             title="Traffic speed stream (pems-bay analogue) - MAE"))
    print()
    print(format_metric_grid(grid, scenario.set_names, metric="rmse",
                             title="Traffic speed stream (pems-bay analogue) - RMSE"))
    print("\nMean MAE per strategy:")
    for method, result in results.items():
        print(f"  {method:>11}: {result.mean_mae():.3f}")


if __name__ == "__main__":
    main()
