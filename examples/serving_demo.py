"""Serving demo: one engine, several tenants, concurrent predict + update.

Spins up the async :class:`repro.serve.ServingEngine` over a multi-tenant
:class:`repro.serve.ModelPool` (three synthetic tenants sharing one sensor
graph), fires concurrent single-window requests through the dynamic
micro-batcher while the serialized update lane folds new observations into
one tenant's model online, and finishes with the node-sharded serving view
— whose stitched output is verified bit-identical to direct prediction.

Run with::

    python examples/serving_demo.py
"""

from __future__ import annotations

import threading

import numpy as np

from repro.graph.sparse import support_cache_stats
from repro.serve import (
    EngineConfig,
    ProcessServingEngine,
    ServingEngine,
    ShardedForecaster,
    build_synthetic_tenants,
    run_closed_loop,
)


def main() -> None:
    # 1. Three tenants (say, three city districts) over ONE shared graph:
    #    diffusion supports are built once, not once per tenant.
    builds_before = support_cache_stats()["graph_support_builds"]
    pool, windows, scenario = build_synthetic_tenants(
        num_tenants=3, num_nodes=16, seed=7, request_windows=24
    )
    spec = scenario.spec
    print(f"pool: {len(pool.resident)} tenants on graph {pool.graph!r}")

    # 2. The engine: deadline-based micro-batching, bounded queues, worker
    #    threads.  Submit returns a future per request.
    config = EngineConfig(max_batch_size=8, max_delay_ms=4.0, num_workers=2)
    with ServingEngine(pool, config) as engine:
        # Warm each tenant once so the demo's timings are steady-state.
        for tenant in pool.resident:
            engine.predict(windows[0], tenant=tenant, timeout=60)
        shared_builds = support_cache_stats()["graph_support_builds"] - builds_before
        assert shared_builds == 1  # T tenants, one graph, one support build
        print(f"diffusion supports built {shared_builds}x for all "
              f"{len(pool.resident)} tenants (shared graph)")

        # 3. Concurrent predict + online update: clients hammer all three
        #    tenants while tenant-0 learns from newly observed windows
        #    through the serialized update lane (readers never observe a
        #    half-stepped optimizer write).
        series = scenario.raw_series
        window, horizon = spec.input_steps, spec.output_steps

        def online_updates() -> None:
            for start in range(0, 6):
                inputs = np.stack([series[start : start + window]])
                actual = np.stack(
                    [series[start + window : start + window + horizon, :,
                            spec.target_channel : spec.target_channel + 1]]
                )
                step = engine.update(inputs, actual, tenant="tenant-0")
                print(f"  online update {start}: task loss {step.task_loss:.4f} "
                      f"(replayed {step.replay_samples})")

        updater = threading.Thread(target=online_updates)
        updater.start()
        result = run_closed_loop(
            engine, windows, concurrency=8, total_requests=120,
            tenants=pool.resident,
        )
        updater.join()
        snapshot = engine.metrics.snapshot()
        print(
            f"served {result['completed']} requests at "
            f"{result['throughput_rps']:.0f} req/s | p50 "
            f"{result['latency_ms']['p50']:.2f} ms, p99 "
            f"{result['latency_ms']['p99']:.2f} ms | mean batch "
            f"{snapshot['mean_batch_size']:.1f} ({snapshot['updates']} online updates)"
        )
        assert result["failed"] == 0
        assert np.isfinite(result["latency_ms"]["p99"])

    # 4. Node-sharded serving (replicate mode): stitched output is
    #    bit-identical to the unsharded forecaster.
    forecaster = pool.forecaster("tenant-1")
    direct = forecaster.predict(windows)
    with ShardedForecaster(forecaster, num_shards=2) as sharded:
        stitched = sharded.predict(windows)
        print(f"sharded serving: {sharded!r}")
    assert np.array_equal(stitched, direct)
    print("2-shard stitched predictions are bit-identical to direct predict")

    # 4b. True memory sharding (partition mode): each shard worker holds
    #     only its owned node rows; spatial mixes gather just the halo rows
    #     their CSR columns reference through an in-process exchange.  The
    #     min-cut planner picks the shard boundaries; output is still
    #     bit-identical to the unsharded forecaster.
    with ShardedForecaster(
        forecaster, num_shards=2, mode="partition", strategy="mincut"
    ) as sharded:
        partitioned = sharded.predict(windows)
        plan = sharded.plan
    assert np.array_equal(partitioned, direct)
    print(
        f"partition mode: 2 memory shards ({plan.strategy} plan, "
        f"{plan.cut_edge_pairs} cut edge pairs) bit-identical to direct predict"
    )

    # 5. Process-parallel serving: the same submit()/future/update API, but
    #    the forwards run in worker processes over a shared-memory model
    #    plane (zero-copy weights + CSR supports, SPSC request rings) —
    #    past the GIL.  Output stays bit-identical to direct predict, and
    #    an online update flips new weights to every worker behind a
    #    seqlock without blocking in-flight requests.
    config = EngineConfig(max_batch_size=8, max_delay_ms=4.0, num_workers=2)
    with ProcessServingEngine(pool, config, sample_windows=windows[:1]) as engine:
        futures = [engine.submit(w, tenant="tenant-1") for w in windows]
        served = np.stack([f.result(timeout=120) for f in futures])
        assert np.array_equal(served, direct)
        inputs = np.stack([series[:window]])
        actual = np.stack(
            [series[window : window + horizon, :,
                    spec.target_channel : spec.target_channel + 1]]
        )
        engine.update(inputs, actual, tenant="tenant-1")
        assert engine.weight_generation("tenant-1") == 1
        post_update = engine.predict(windows[0], tenant="tenant-1", timeout=120)
        assert np.array_equal(
            post_update, pool.forecaster("tenant-1").predict(windows[:1])[0]
        )
        merged = engine.metrics()["workers"]
        print(
            f"process engine [{engine.start_method}]: {len(windows)} requests "
            f"bit-identical to direct predict across {config.num_workers} worker "
            f"processes ({merged['batches']} batches, "
            f"{merged['refreshes']} weight refreshes after 1 online update)"
        )


if __name__ == "__main__":
    main()
