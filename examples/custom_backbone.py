"""Plug a custom prediction backbone into the URCL framework.

The paper stresses that URCL is a *unified* framework: any spatio-temporal
predictor that can be reorganised into an STEncoder/STDecoder pair can be
dropped in (Sec. IV-D).  This example

1. runs URCL with the built-in RNN-based DCRNN backbone, and
2. defines a brand-new minimal backbone (per-node MLP over the flattened
   window) by subclassing :class:`repro.models.AutoencoderBackbone`, and
   trains it continually on the same stream.

Run with::

    python examples/custom_backbone.py
"""

from __future__ import annotations

import numpy as np

from repro import ContinualTrainer, TrainingConfig, URCLConfig, URCLModel
from repro.data import build_streaming_scenario, load_dataset
from repro.models import AutoencoderBackbone
from repro.models.stdecoder import STDecoder
from repro.models.stsimsiam import STSimSiam
from repro.nn import Linear, ReLU, Sequential
from repro.tensor import Tensor


class WindowMLPEncoder(Sequential):
    """Encode each node's flattened window with a shared two-layer MLP."""

    def __init__(self, input_steps: int, in_channels: int, latent_dim: int, rng=None):
        super().__init__(
            Linear(input_steps * in_channels, 2 * latent_dim, rng=rng),
            ReLU(),
            Linear(2 * latent_dim, latent_dim, rng=rng),
        )
        self.input_steps = input_steps
        self.in_channels = in_channels

    def forward(self, x: Tensor, adjacency: np.ndarray | None = None) -> Tensor:
        # (batch, time, nodes, channels) -> (batch, nodes, time * channels)
        batch, time, nodes, channels = x.shape
        flattened = x.transpose(0, 2, 1, 3).reshape(batch, nodes, time * channels)
        return super().forward(flattened)


class WindowMLPBackbone(AutoencoderBackbone):
    """A deliberately simple backbone: no graph, no convolution, just MLPs.

    It ignores spatial structure entirely, which makes it a useful lower
    bound when judging how much the graph-aware backbones gain.
    """

    def __init__(self, network, in_channels, input_steps=12, output_steps=1,
                 out_channels=1, latent_dim=32, rng=None):
        super().__init__(network, in_channels, input_steps, output_steps, out_channels)
        self.encoder = WindowMLPEncoder(input_steps, in_channels, latent_dim, rng=rng)
        self.latent_dim = latent_dim
        self.decoder = STDecoder(latent_dim, output_steps, out_channels, rng=rng)

    def encode(self, x, adjacency=None):
        return self.encoder(x, adjacency=adjacency)

    def decode(self, latent):
        return self.decoder(latent)


def run_with_backbone(scenario, training, model: URCLModel, label: str) -> None:
    result = ContinualTrainer(model, training).run(scenario, method_name=label)
    maes = ", ".join(f"{name}={value:.2f}" for name, value in result.mae_by_set().items())
    print(f"{label:>18}: {maes}")


def main() -> None:
    dataset = load_dataset("pems04", num_days=6, num_nodes=24, seed=5)
    scenario = build_streaming_scenario(dataset)
    spec = dataset.spec
    training = TrainingConfig(
        epochs_base=2, epochs_incremental=1, batch_size=16,
        max_batches_per_epoch=8, eval_max_windows=64,
    )
    shapes = dict(
        in_channels=spec.num_channels, input_steps=spec.input_steps,
        output_steps=spec.output_steps, out_channels=1,
    )

    # 1. A built-in alternative backbone, selected by name.
    dcrnn_urcl = URCLModel(
        scenario.network, config=URCLConfig(backbone="dcrnn", buffer_capacity=64), rng=0, **shapes
    )
    print("training URCL with the DCRNN backbone ...")
    run_with_backbone(scenario, training, dcrnn_urcl, "URCL + DCRNN")

    # 2. A hand-written backbone: build the URCL model, then swap the backbone in.
    print("training URCL with a custom per-node MLP backbone ...")
    custom_urcl = URCLModel(
        scenario.network, config=URCLConfig(buffer_capacity=64), rng=0, **shapes
    )
    custom_backbone = WindowMLPBackbone(scenario.network, rng=1, **shapes)
    custom_urcl.backbone = custom_backbone
    # The SimSiam branch shares the new encoder; rebuild it so the projection
    # head matches the new latent dimension.
    custom_urcl.simsiam = STSimSiam(
        custom_backbone.encoder, latent_dim=custom_backbone.latent_dim, rng=2
    )
    run_with_backbone(scenario, training, custom_urcl, "URCL + WindowMLP")


if __name__ == "__main__":
    main()
