"""Resilience demo: fault injection, retries, breakers, graceful degradation.

Walks the serving engine's fault-tolerance machinery end to end:

1. a seeded :class:`repro.serve.FaultPlan` crashes workers and corrupts
   inbound windows while a closed loop runs — every accepted request still
   resolves (retried batches are bit-identical to a fault-free serve);
2. request deadlines expire stale work with a structured
   :class:`~repro.exceptions.DeadlineExceeded`;
3. a tenant whose model goes bad trips its circuit breaker and is served
   by the model-free historical-average fallback until the model heals,
   after which half-open probes close the breaker;
4. a poisoned online update rolls back to the pre-step weights bit-for-bit.

Run with::

    python examples/resilience_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DeadlineExceeded
from repro.serve import (
    EngineConfig,
    FaultPlan,
    ServingEngine,
    build_synthetic_tenants,
)


def main() -> None:
    pool, windows, scenario = build_synthetic_tenants(
        num_tenants=2, num_nodes=12, seed=3, request_windows=16
    )
    tenant = pool.resident[0]
    spec = scenario.spec

    # 1. Fault storm: seeded worker crashes + stalls + NaN corruption.  The
    #    supervisor restarts dead workers and requeues their batches; NaN
    #    windows are mask-and-imputed at admission.  Nothing is lost.
    direct = pool.forecaster(tenant).predict(windows)
    config = EngineConfig(
        max_batch_size=8, max_delay_ms=4.0, num_workers=2,
        max_retries=4, retry_backoff_ms=5.0, supervise_interval_s=0.02,
        wedge_timeout_s=2.0, breaker_failures=4, breaker_reset_s=0.25,
        fallback="ha",
    )
    # crash_rate=1.0 + a fault limit of 3 makes the storm deterministic:
    # the first three batch dispatches die, everything after them serves.
    crash_plan = FaultPlan(seed=0, worker_crash_rate=1.0, worker_fault_limit=3)
    with ServingEngine(pool, config, faults=crash_plan) as engine:
        futures = [engine.submit(window, tenant=tenant) for window in windows]
        served = np.stack([future.result(timeout=60) for future in futures])
        stats = engine.injector.stats()
        print(
            f"fault storm: {stats['crashes']} injected worker crashes, "
            f"{engine.metrics.worker_restarts} workers restarted, "
            f"{engine.metrics.retried} requests retried, 0 lost"
        )
        assert np.array_equal(served, direct)
        print("retried batches are bit-identical to a fault-free serve")

    # 2. Deadlines: a request that cannot be served inside its budget fails
    #    fast with a structured error instead of arriving uselessly late.
    slow = EngineConfig(max_batch_size=64, max_delay_ms=200.0, num_workers=1,
                        supervise_interval_s=0.01)
    with ServingEngine(pool, slow, faults=None) as engine:
        future = engine.submit(windows[0], tenant=tenant, deadline_ms=15.0)
        try:
            future.result(timeout=60)
            raise AssertionError("deadline should have expired in the batcher")
        except DeadlineExceeded as exc:
            print(
                f"deadline: expired after {exc.waited_ms:.0f} ms "
                f"(budget {exc.deadline_ms:.0f} ms, tenant {exc.tenant!r})"
            )

    # 3. Circuit breaker + fallback: poison the model so every batch fails.
    #    After `breaker_failures` consecutive failures the breaker opens and
    #    requests are answered by the historical-average baseline; healing
    #    the model lets half-open probes close the breaker again.
    with ServingEngine(pool, config, faults=None) as engine:
        engine.predict(windows[0], tenant=tenant, timeout=60)  # teach HA the shape
        forecaster = pool.forecaster(tenant)
        saved = forecaster.snapshot_state()
        for parameter in forecaster.model.parameters():
            parameter.data[...] = np.nan  # the model is now sick
        # Sequential requests, so each is its own micro-batch = one breaker
        # event; the 5th onwards hits an already-open breaker (fast fail ->
        # fallback) instead of touching the sick model at all.
        answers = np.stack([
            engine.predict(window, tenant=tenant, timeout=60)
            for window in windows[:6]
        ])
        breaker = engine.health()["breakers"][tenant]
        print(
            f"breaker: state={breaker['state']} after a sick model; "
            f"{engine.metrics.fallbacks} requests served by the HA fallback "
            f"(finite: {bool(np.isfinite(answers).all())})"
        )
        assert breaker["state"] != "closed"
        assert np.isfinite(answers).all()
        forecaster.restore_state(saved)  # the model heals
        import time
        time.sleep(config.breaker_reset_s * 1.5)  # let the breaker half-open
        healed = engine.predict(windows[0], tenant=tenant, timeout=60)
        assert np.array_equal(healed, direct[0])
        print(
            f"breaker: state={engine.health()['breakers'][tenant]['state']} "
            "after successful half-open probe — healthy serving resumed"
        )

    # 4. Update rollback: a poisoned online batch raises mid-step and the
    #    model + optimizer are restored bit-for-bit.
    with ServingEngine(pool, config) as engine:
        series = scenario.raw_series
        window, horizon = spec.input_steps, spec.output_steps
        inputs = np.stack([series[:window]])
        actual = np.stack(
            [series[window : window + horizon, :,
                    spec.target_channel : spec.target_channel + 1]]
        )
        before = engine.predict(windows[0], tenant=tenant, timeout=60)
        try:
            engine.update(inputs, actual[:, :-1], tenant=tenant)  # wrong horizon
        except Exception as exc:
            print(f"update rollback: poisoned step raised {type(exc).__name__}, "
                  f"{engine.metrics.rollbacks} rollback(s) recorded")
        after = engine.predict(windows[0], tenant=tenant, timeout=60)
        assert engine.metrics.rollbacks == 1
        assert np.array_equal(before, after)
        print("post-rollback predictions are bit-identical to pre-update")

    print("resilience demo complete: all futures resolved, model healed, "
          "weights rolled back")


if __name__ == "__main__":
    main()
