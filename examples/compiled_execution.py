"""Compiled execution: tape capture + replay on the train/predict hot loop.

Tracing is on by default — the first training step or predict call per
(model, kind, shape, dtype, knobs) key records the op graph, every later
call replays prebuilt NumPy kernels with no per-op Python dispatch.  This
example makes the machinery visible: it times an online-update/predict
loop eagerly and traced, verifies the two paths agree bit-for-bit, and
dumps the program-cache counters that the serving engine exposes.

Run with::

    python examples/compiled_execution.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import TrainingConfig, URCLConfig, URCLModel, build_streaming_scenario, load_dataset
from repro.models.stencoder import STEncoderConfig
from repro.serve import Forecaster
from repro.tensor import (
    clear_program_cache,
    program_cache_stats,
    set_traced_execution,
    traced_execution,
)

WARMUP = 10  # until the replay buffer fills: shapes shift, programs capture
STEPS = 20   # steady state: every step replays


def build_forecaster(seed: int = 0) -> tuple[Forecaster, np.ndarray, np.ndarray]:
    dataset = load_dataset("pems08", num_days=4, num_nodes=20, seed=3)
    scenario = build_streaming_scenario(dataset)
    model = URCLModel(
        scenario.network,
        in_channels=dataset.spec.num_channels,
        input_steps=dataset.spec.input_steps,
        output_steps=dataset.spec.output_steps,
        config=URCLConfig(
            encoder=STEncoderConfig(),
            buffer_capacity=64,
            replay_sample_size=4,
            rmir_candidate_pool=8,
        ),
        rng=seed,
    )
    forecaster = Forecaster(
        model,
        scaler=scenario.scaler,
        target_channel=dataset.spec.target_channel,
        training=TrainingConfig(batch_size=8),
    )
    spec = dataset.spec
    series = dataset.series
    total = WARMUP + STEPS
    windows = np.stack(
        [series[s : s + spec.input_steps] for s in range(total)]
    )
    targets = np.stack(
        [
            series[
                s + spec.input_steps : s + spec.input_steps + spec.output_steps,
                :,
                spec.target_channel : spec.target_channel + 1,
            ]
            for s in range(total)
        ]
    )
    return forecaster, windows, targets


def run_loop(forecaster: Forecaster, windows: np.ndarray, targets: np.ndarray):
    """Serving loop (predict each window, fold it back in), timed after warmup."""
    predictions = []
    start = 0.0
    for i in range(WARMUP + STEPS):
        if i == WARMUP:
            start = time.perf_counter()
        predictions.append(forecaster.predict(windows[i : i + 1]))
        forecaster.update(windows[i : i + 1], targets[i : i + 1])
    return np.stack(predictions), time.perf_counter() - start


def main() -> None:
    # Eager reference: the escape hatch disables capture inside the block.
    forecaster, windows, targets = build_forecaster()
    with traced_execution(False):
        eager_out, eager_secs = run_loop(forecaster, windows, targets)
    print(f"eager : {STEPS / eager_secs:6.1f} update+predict steps/s")

    # Traced run from identical initial state (same seed, same RNG streams):
    # step 1 captures, the rest replay.
    set_traced_execution(True)
    clear_program_cache()
    forecaster, windows, targets = build_forecaster()
    traced_out, traced_secs = run_loop(forecaster, windows, targets)
    print(f"traced: {STEPS / traced_secs:6.1f} update+predict steps/s")

    assert np.array_equal(eager_out, traced_out), "replay must be bit-identical"
    print("bit-parity: traced predictions identical to eager")

    stats = program_cache_stats()
    interesting = (
        "captures", "replays", "backward_replays", "structure_hits",
        "shape_misses", "eager_calls", "untraceable", "entries", "bytes",
    )
    print("program cache:", {key: stats[key] for key in interesting})


if __name__ == "__main__":
    main()
