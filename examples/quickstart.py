"""Quickstart: continual spatio-temporal prediction with URCL in ~1 minute.

Loads a small synthetic analogue of the PEMS08 traffic-flow benchmark,
splits it into the paper's streaming protocol (a base set plus four
incremental sets), trains the URCL framework continually over the stream
and prints the per-period accuracy together with the replay-buffer state.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ContinualTrainer,
    TrainingConfig,
    URCLConfig,
    URCLModel,
    build_streaming_scenario,
    load_dataset,
)
from repro.models.stencoder import STEncoderConfig


def main() -> None:
    # 1. Data: a compact PEMS08 analogue (24 sensors, 6 days, 5-minute interval).
    dataset = load_dataset("pems08", num_days=6, num_nodes=24, seed=7)
    scenario = build_streaming_scenario(dataset)
    print(f"dataset: {dataset.name}  series shape: {dataset.series.shape}")
    print(f"stream periods: {scenario.set_names}")

    # 2. Model: URCL with a small GraphWaveNet-style encoder.
    config = URCLConfig(
        encoder=STEncoderConfig(),  # width-reduced defaults; .paper_scale() for full width
        buffer_capacity=128,
        replay_sample_size=8,
    )
    model = URCLModel(
        scenario.network,
        in_channels=dataset.spec.num_channels,
        input_steps=dataset.spec.input_steps,
        output_steps=dataset.spec.output_steps,
        config=config,
        rng=0,
    )
    print(f"model parameters: {model.num_parameters():,}")

    # 3. Continual training over the stream (Algorithm 1 / Fig. 5 protocol).
    training = TrainingConfig(
        epochs_base=3,
        epochs_incremental=2,
        batch_size=16,
        max_batches_per_epoch=10,
        eval_max_windows=96,
    )
    result = ContinualTrainer(model, training).run(scenario)

    # 4. Inspect the outcome.
    print("\nMAE per stream period (cumulative knowledge-retention protocol):")
    for name, mae in result.mae_by_set().items():
        print(f"  {name:>4}: {mae:7.3f}")
    print("\nRMSE per stream period:")
    for name, rmse in result.rmse_by_set().items():
        print(f"  {name:>4}: {rmse:7.3f}")
    print(f"\nreplay buffer: {len(model.buffer)} windows from {model.buffer.occupancy_by_set()}")


if __name__ == "__main__":
    main()
