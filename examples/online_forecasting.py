"""Online forecasting: predict -> update over a simulated stream.

This example exercises the serving surface the paper's setting ultimately
needs: a :class:`repro.serve.Forecaster` is fitted continually on the
historical part of a stream, then serves raw-data predictions while the
stream keeps growing, folding every newly observed window back into the
model with replay-augmented online updates — and finally round-trips
through ``save``/``load`` to show the whole serving state is durable.

Run with::

    python examples/online_forecasting.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    Forecaster,
    TrainingConfig,
    URCLConfig,
    build_streaming_scenario,
    load_dataset,
)
from repro.core.metrics import mae
from repro.models.stencoder import STEncoderConfig


def main() -> None:
    # 1. A compact PEMS08 analogue and the paper's streaming protocol.
    dataset = load_dataset("pems08", num_days=6, num_nodes=24, seed=7)
    scenario = build_streaming_scenario(dataset)
    spec = scenario.spec

    # 2. One facade wraps model + scaler + graph behind raw-data verbs.
    forecaster = Forecaster.from_scenario(
        scenario,
        config=URCLConfig(
            encoder=STEncoderConfig(),
            buffer_capacity=128,
            replay_sample_size=8,
        ),
        training=TrainingConfig(
            epochs_base=3,
            epochs_incremental=2,
            batch_size=16,
            max_batches_per_epoch=10,
            eval_max_windows=96,
        ),
        seed=0,
    )

    # 3. Fit continually on the historical stream (Bset + I1..I3); hold the
    #    final period back to play the role of "live" traffic.
    history_sets = len(scenario.sets) - 1
    result = forecaster.fit(scenario, max_sets=history_sets)
    print("historical training (MAE per period):")
    for name, value in result.mae_by_set().items():
        print(f"  {name:>4}: {value:8.3f}")

    # 4. Simulate the live stream: windows arrive one micro-batch at a time;
    #    we predict first, score against what actually happened, then update.
    series = scenario.raw_series
    live_start = scenario.sets[-1].start_step
    window, horizon = spec.input_steps, spec.output_steps
    arrivals = 6
    errors = []
    print(f"\nlive stream ({arrivals} arrivals of 2 windows each):")
    for arrival in range(arrivals):
        starts = [live_start + arrival * 2, live_start + arrival * 2 + 1]
        inputs = np.stack([series[s : s + window] for s in starts])
        actual = np.stack(
            [
                series[s + window : s + window + horizon, :,
                       spec.target_channel : spec.target_channel + 1]
                for s in starts
            ]
        )
        predicted = forecaster.predict(inputs)          # raw in, raw out
        error = mae(predicted, actual)
        errors.append(error)
        step = forecaster.update(inputs, actual)        # replay-augmented step
        print(
            f"  arrival {arrival}: MAE {error:8.3f} | task loss "
            f"{step.task_loss:.4f} | replayed {step.replay_samples} windows"
        )
    print(f"live MAE, first 3 vs last 3 arrivals: "
          f"{np.mean(errors[:3]):.3f} -> {np.mean(errors[-3:]):.3f}")

    # 5. Durability: the saved bundle serves bit-identical predictions.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "forecaster"
        forecaster.save(path)
        restored = Forecaster.load(path)
        probe = np.stack([series[live_start : live_start + window]])
        assert np.array_equal(forecaster.predict(probe), restored.predict(probe))
        print(f"\nsave/load round-trip verified at {path}")
    print(f"replay buffer now holds {len(forecaster.model.buffer)} windows: "
          f"{forecaster.model.buffer.occupancy_by_set()}")


if __name__ == "__main__":
    main()
