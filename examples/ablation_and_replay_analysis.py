"""Component ablation and replay-buffer analysis on a drifting flow stream.

Reproduces a small-scale version of the paper's Fig. 6 ablation (disabling
STMixup, RMIR sampling, augmentation and the GraphCL loss one at a time) and
then inspects how the replay buffer and the RMIR sampler behave over the
stream: which periods the buffer holds, and how similar the retrieved
windows are to the current batch.

Run with::

    python examples/ablation_and_replay_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import ContinualTrainer, TrainingConfig, URCLConfig, URCLModel
from repro.data import DataLoader, build_streaming_scenario, load_dataset
from repro.experiments import format_table
from repro.nn.losses import mae_loss
from repro.replay import pearson_similarity


def run_variant(scenario, training, config, label, seed=0):
    spec = scenario.spec
    model = URCLModel(
        scenario.network, in_channels=spec.num_channels, input_steps=spec.input_steps,
        config=config, rng=seed,
    )
    result = ContinualTrainer(model, training).run(scenario, method_name=label)
    return model, result


def main() -> None:
    dataset = load_dataset("pems08", num_days=6, num_nodes=20, seed=9)
    scenario = build_streaming_scenario(dataset)
    training = TrainingConfig(
        epochs_base=2, epochs_incremental=1, batch_size=16,
        max_batches_per_epoch=8, eval_max_windows=64,
    )
    base_config = URCLConfig(buffer_capacity=128, replay_sample_size=8)

    # ------------------------------------------------------------------ #
    # 1. Component ablation (Fig. 6 style)
    # ------------------------------------------------------------------ #
    variants = {
        "URCL": base_config,
        "w/o_STU": base_config.without("mixup"),
        "w/o_RMIR": base_config.without("rmir"),
        "w/o_STA": base_config.without("augmentation"),
        "w/o_GCL": base_config.without("graphcl"),
    }
    rows = []
    trained_full = None
    for label, config in variants.items():
        print(f"training {label} ...")
        model, result = run_variant(scenario, training, config, label)
        rows.append([label, result.mean_mae(), result.mean_rmse()])
        if label == "URCL":
            trained_full = model
    print()
    print(format_table(["variant", "mean MAE", "mean RMSE"], rows,
                       title="Component ablation (pems08 analogue)"))

    # ------------------------------------------------------------------ #
    # 2. Replay-buffer analysis for the full model
    # ------------------------------------------------------------------ #
    print("\nReplay-buffer occupancy by stream period:")
    for period, count in sorted(trained_full.buffer.occupancy_by_set().items()):
        print(f"  {period:>4}: {count} windows")

    # How similar are RMIR-retrieved windows to a fresh batch from the last period?
    last_period = scenario.sets[-1]
    batch = next(iter(DataLoader(last_period.train, batch_size=16)))
    replay_inputs, _ = trained_full.sampler.sample(
        trained_full.buffer, batch.inputs, batch.targets,
        sample_size=8, model=trained_full.backbone, loss_fn=mae_loss,
    )
    similarity = pearson_similarity(replay_inputs, batch.inputs.mean(axis=0))
    print("\nPearson similarity of RMIR-retrieved windows to the current batch:")
    print("  " + ", ".join(f"{value:+.2f}" for value in similarity))
    print(f"  mean similarity: {similarity.mean():+.3f}")


if __name__ == "__main__":
    main()
