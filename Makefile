PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: ci test bench-smoke bench-hot-path bench-hot-path-smoke \
	bench-spatial bench-spatial-smoke \
	bench-serving bench-serving-smoke bench-serving-proc-smoke \
	bench-sharding bench-sharding-smoke \
	bench-resilience bench-resilience-smoke examples-smoke

# Tier-1 gate: full unit suite, ~10-second smokes of the Fig. 7 efficiency
# benchmark, the traced-vs-eager hot path, the spatial kernel, the serving
# engine and the fault-storm resilience harness (catch hot-path and serving
# regressions that unit tests miss; each records its JSON trajectory per
# PR), plus the runnable examples (quickstart, online forecasting, serving
# demo, compiled execution, resilience demo) as end-to-end smokes of the
# public API surface.
ci: test bench-smoke bench-hot-path-smoke bench-spatial-smoke \
	bench-serving-smoke bench-serving-proc-smoke bench-sharding-smoke \
	bench-resilience-smoke examples-smoke

test:
	$(PYTHON) -m pytest tests -x -q

# End-to-end smokes of the documented workflows: continual training via the
# quickstart, the predict->update->save/load serving loop, the async
# multi-tenant engine with concurrent predict + online update, the
# traced-vs-eager capture/replay walkthrough (asserts bit-parity), and the
# fault-injection / graceful-degradation walkthrough.
examples-smoke:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/online_forecasting.py
	$(PYTHON) examples/serving_demo.py
	$(PYTHON) examples/compiled_execution.py
	$(PYTHON) examples/resilience_demo.py

bench-smoke:
	REPRO_BENCH_SCALE=smoke $(PYTHON) -m pytest benchmarks/bench_fig7_efficiency.py -x -q

# Full hot-path measurement (traced vs eager steps/sec, eval windows/sec,
# compiled-loop throughput, f32/f64 parity); appends to
# benchmarks/results/BENCH_hot_path.json.
bench-hot-path:
	$(PYTHON) benchmarks/bench_hot_path.py

# Fast traced-vs-eager smoke: asserts capture/replay stays bit-identical to
# eager on a real training loop without the full sweep.
bench-hot-path-smoke:
	$(PYTHON) benchmarks/bench_hot_path.py --scale smoke --steps 4 --skip-parity

# Spatial-kernel sweep (CSR vs dense across node counts and densities);
# appends to benchmarks/results/BENCH_spatial.json.
bench-spatial:
	$(PYTHON) benchmarks/bench_spatial.py

bench-spatial-smoke:
	$(PYTHON) benchmarks/bench_spatial.py --scale smoke

# Serving-engine sweep (dynamic batching x tenants x node shards, closed
# loop); appends to benchmarks/results/BENCH_serving.json and asserts the
# batched/sharded engine serves bit-identical predictions.
bench-serving:
	$(PYTHON) benchmarks/bench_serving.py

bench-serving-smoke:
	$(PYTHON) benchmarks/bench_serving.py --scale smoke --engine thread

# Process-engine smoke: shared-memory worker processes, per-run output
# asserted bit-identical to direct predict and to the in-process engine.
bench-serving-proc-smoke:
	$(PYTHON) benchmarks/bench_serving.py --scale smoke --engine process

# Memory-sharded partition forward: bit-parity at K in {2,4} for both
# planner strategies, min-cut-beats-contiguous, and per-shard peak
# activation within the owned+halo bound (N=50k at bench scale).
bench-sharding:
	$(PYTHON) benchmarks/bench_serving.py --engine sharding

bench-sharding-smoke:
	$(PYTHON) benchmarks/bench_serving.py --scale smoke --engine sharding

# Resilience harness (clean vs seeded fault-storm closed loops, recovery
# time); appends to benchmarks/results/BENCH_resilience.json and asserts
# retry bit-parity, zero lost futures and post-storm recovery.
bench-resilience:
	$(PYTHON) benchmarks/bench_resilience.py

bench-resilience-smoke:
	$(PYTHON) benchmarks/bench_resilience.py --scale smoke
