PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: ci test bench-smoke bench-hot-path

# Tier-1 gate: full unit suite plus a 10-second smoke of the Fig. 7
# efficiency benchmark (catches hot-path regressions that unit tests miss).
ci: test bench-smoke

test:
	$(PYTHON) -m pytest tests -x -q

bench-smoke:
	REPRO_BENCH_SCALE=smoke $(PYTHON) -m pytest benchmarks/bench_fig7_efficiency.py -x -q

# Full hot-path measurement (steps/sec, eval windows/sec, f32/f64 parity);
# appends to benchmarks/results/BENCH_hot_path.json.
bench-hot-path:
	$(PYTHON) benchmarks/bench_hot_path.py
