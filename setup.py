"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package remains installable in
offline environments whose setuptools/pip lack PEP 660 editable-wheel
support (no ``wheel`` package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "URCL: Unified Replay-based Continuous Learning for Spatio-Temporal "
        "Prediction on Streaming Data (ICDE 2024 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.12", "networkx>=3.0"],
)
