"""Serving-engine benchmark: dynamic batching x tenants x node shards.

A closed-loop load generator (``repro.serve.loadgen``) drives the
:class:`~repro.serve.ServingEngine` over a synthetic multi-tenant scenario
and sweeps the three serving axes:

* **batching** — one-request-at-a-time (``max_batch_size=1``) versus the
  deadline-based dynamic micro-batcher, at fixed concurrency;
* **tenants** — traffic interleaved round-robin over T tenant models that
  share one CSR graph through the byte-bounded :class:`ModelPool`;
* **shards** — node-sharded serving (``replicate`` mode) at K shards.

Correctness is asserted inline before any timing: the batched + sharded
engine must produce *bit-identical* outputs to a direct
``Forecaster.predict`` on the same windows, for every shard count in the
sweep.  At the full ``bench`` scale the dynamic batcher must deliver at
least 2x the unbatched throughput at concurrency >= 32.

The process-parallel engine (``repro.serve.proc``) gets its own leg: a
worker-count sweep over shared-memory worker processes, with per-run
bit-parity asserted against *both* direct ``Forecaster.predict`` and the
in-process threaded engine, per-shard scaling efficiency recorded (and
asserted >= 0.7 only when the host actually has the cores), and — at the
full ``bench`` scale — the 4-tenant / 2-shard batched point required to
clear 4x the threaded engine's GIL-bound 556 req/s.

Everything records to ``benchmarks/results/BENCH_serving.json`` (p50/p95/
p99 latency, throughput, batching efficiency per sweep point) so the
serving-performance trajectory is tracked per PR.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_serving.py --scale smoke
    PYTHONPATH=src python benchmarks/bench_serving.py --engine process
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.experiments.reporting import format_table
from repro.graph.sparse import clear_support_cache, support_cache_stats
from repro.serve import (
    EngineConfig,
    ProcessServingEngine,
    ServingEngine,
    build_synthetic_tenants,
    forecaster_nbytes,
)
from repro.serve.loadgen import serving_sweep_point
from repro.serve.tenancy import ModelPool
from repro.utils.serialization import save_json

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_serving.json"

# The threaded engine's 4-tenant / 2-shard batched throughput collapses to
# ~556 req/s under the GIL (see the PR-7 record in BENCH_serving.json); the
# process plane must clear 4x that at the full bench scale.
GIL_BASELINE_RPS = 556.0

# (tenants, shard counts, concurrency, total requests, nodes, request windows)
SWEEPS = {
    "smoke": (2, (1, 2), 16, 96, 12, 24),
    "bench": (4, (1, 2, 4), 32, 512, 24, 48),
}

# Worker-process counts for the process-engine scaling leg, per scale.
PROC_WORKERS = {"smoke": (1, 2), "bench": (1, 2, 4)}


def assert_parity(pool, windows: np.ndarray, shard_counts, concurrency: int) -> list[dict]:
    """Engine output must equal direct predict bit-for-bit, per shard count."""
    checks = []
    for tenant in pool.resident:
        direct = pool.forecaster(tenant).predict(windows)
        for shards in shard_counts:
            config = EngineConfig(
                max_batch_size=max(concurrency // 2, 2), max_delay_ms=2.0,
                num_workers=2, shards=shards,
            )
            with ServingEngine(pool, config) as engine:
                futures = [engine.submit(window, tenant=tenant) for window in windows]
                served = np.stack([future.result(timeout=120) for future in futures])
            if not np.array_equal(served, direct):
                raise AssertionError(
                    f"engine output diverged from direct predict "
                    f"(tenant={tenant}, shards={shards})"
                )
            checks.append({"tenant": tenant, "shards": shards, "bit_identical": True})
    return checks


def assert_process_parity(pool, windows: np.ndarray, concurrency: int) -> list[dict]:
    """Process-engine output must be bit-identical to direct predict AND to
    the in-process threaded engine, per tenant, on every run."""
    config = EngineConfig(
        max_batch_size=max(concurrency // 2, 2), max_delay_ms=2.0, num_workers=2,
    )
    served_threaded = {}
    with ServingEngine(pool, config) as engine:
        for tenant in pool.resident:
            futures = [engine.submit(window, tenant=tenant) for window in windows]
            served_threaded[tenant] = np.stack(
                [future.result(timeout=120) for future in futures]
            )
    checks = []
    with ProcessServingEngine(pool, config, sample_windows=windows[:1]) as engine:
        for tenant in pool.resident:
            direct = pool.forecaster(tenant).predict(windows)
            futures = [engine.submit(window, tenant=tenant) for window in windows]
            served = np.stack([future.result(timeout=120) for future in futures])
            if not np.array_equal(served, direct):
                raise AssertionError(
                    f"process-engine output diverged from direct predict "
                    f"(tenant={tenant})"
                )
            if not np.array_equal(served, served_threaded[tenant]):
                raise AssertionError(
                    f"process-engine output diverged from the threaded engine "
                    f"(tenant={tenant})"
                )
            checks.append({
                "tenant": tenant, "engine": "process",
                "bit_identical_to_direct": True,
                "bit_identical_to_threaded": True,
            })
    return checks


def process_sweep(pool, windows, tenants, worker_counts, concurrency: int,
                  total_requests: int, scale: str) -> dict:
    """Worker-process scaling leg + the headline 4-tenant / 2-shard point."""
    points = []
    for workers in worker_counts:
        points.append(sweep_point(
            pool, windows, tenants, shards=1, batching=True,
            concurrency=concurrency, total_requests=total_requests,
            num_workers=workers, engine_kind="process",
        ))
    headline = sweep_point(
        pool, windows, tenants, shards=2, batching=True,
        concurrency=concurrency, total_requests=total_requests,
        num_workers=max(worker_counts), engine_kind="process",
    )
    base, widest = points[0], points[-1]
    max_workers = max(worker_counts)
    efficiency = (
        widest["throughput_rps"] / (base["throughput_rps"] * max_workers)
        if base["throughput_rps"] > 0 else 0.0
    )
    cores = os.cpu_count() or 1
    record = {
        "sweep": points,
        "headline": headline,
        "scaling": {
            "workers": list(worker_counts),
            "throughput_rps": [p["throughput_rps"] for p in points],
            "efficiency_1_to_max": efficiency,
            "cpu_cores": cores,
            "efficiency_asserted": cores >= max_workers,
        },
    }
    if cores >= max_workers and efficiency < 0.7:
        raise AssertionError(
            f"process engine scaled 1 -> {max_workers} workers at only "
            f"{efficiency:.2f} efficiency on {cores} cores (>= 0.7 required)"
        )
    # The 4x-over-GIL headline needs real parallelism: on a box without the
    # cores (CI containers are often 1-2 vCPU) the number is recorded for
    # the trajectory but cannot be asserted — there is nothing to scale on.
    required = 4 * GIL_BASELINE_RPS
    record["headline_required_rps"] = required
    record["headline_asserted"] = scale == "bench" and concurrency >= 32 and cores >= 4
    if record["headline_asserted"] and headline["throughput_rps"] < required:
        raise AssertionError(
            f"process engine served {headline['throughput_rps']:.0f} req/s "
            f"on the {headline['tenants']}-tenant / 2-shard batched point "
            f"(>= {required:.0f} = 4 x the {GIL_BASELINE_RPS:.0f} req/s "
            f"GIL-bound threaded baseline required)"
        )
    return record


def sweep_point(pool, windows, tenants, shards: int, batching: bool,
                concurrency: int, total_requests: int,
                num_workers: int = 2, engine_kind: str = "thread") -> dict:
    result = serving_sweep_point(
        pool, windows, tenants, shards=shards, batching=batching,
        concurrency=concurrency, total_requests=total_requests,
        num_workers=num_workers, engine_kind=engine_kind,
    )
    if result["failed"]:
        raise AssertionError(f"{result['failed']} requests failed during the sweep")
    return result


def bench_pool(num_tenants: int, num_nodes: int, seed: int) -> dict:
    """Multi-tenant pool: shared-graph support builds + byte-bounded LRU."""
    clear_support_cache()
    builds_before = support_cache_stats()["graph_support_builds"]
    pool, windows, _ = build_synthetic_tenants(
        num_tenants=num_tenants, num_nodes=num_nodes, seed=seed, request_windows=8,
    )
    for tenant in pool.resident:
        pool.forecaster(tenant).predict(windows[:2])
    builds = support_cache_stats()["graph_support_builds"] - builds_before
    if builds != 1:
        raise AssertionError(
            f"{num_tenants} tenants sharing one graph built supports {builds} times"
        )
    per_tenant = forecaster_nbytes(pool.forecaster(pool.resident[0]))
    # Re-home the tenants into a bounded pool sized for roughly half of
    # them.  Eviction requires a reloadable checkpoint per tenant (put-only
    # tenants are pinned), so save each one to disk and register the paths.
    bound = int(per_tenant * max(num_tenants // 2, 1) + per_tenant // 2)
    bounded = ModelPool(max_bytes=bound, network=pool.network)
    with tempfile.TemporaryDirectory() as staging:
        for tenant in list(pool.resident):
            path = pool.forecaster(tenant).save(Path(staging) / tenant)
            bounded.register(tenant, path)
            bounded.get(tenant)
        stats = bounded.stats()
    if stats["resident_bytes"] > bound:
        raise AssertionError(
            f"pool holds {stats['resident_bytes']} bytes over the {bound} bound"
        )
    return {
        "tenants": num_tenants,
        "per_tenant_bytes": per_tenant,
        "max_bytes": bound,
        "resident_bytes": stats["resident_bytes"],
        "resident": stats["resident"],
        "evictions": stats["evictions"],
        "support_builds_for_all_tenants": builds,
    }


# ---------------------------------------------------------------------- #
# Memory-sharded (partition-mode) inference leg
# ---------------------------------------------------------------------- #
# (num_nodes, clusters, shard counts, batch, input steps, hidden channels)
SHARDING_SCALES = {
    "smoke": (2048, 8, (2, 4), 2, 8, 8),
    "bench": (50_000, 16, (2, 4), 1, 8, 8),
}


def _clustered_graph(num_nodes: int, clusters: int, seed: int):
    """Sparse clustered graph with shuffled node ids.

    Dense intra-cluster connectivity (~6 out-edges per node) plus a thin
    layer of cross-cluster edges, then a random node permutation so
    contiguous index ranges do not coincide with the clusters — the gap the
    min-cut planner is supposed to close.
    """
    from scipy import sparse as sp

    from repro.graph import Graph

    rng = np.random.default_rng(seed)
    size = num_nodes // clusters
    rows, cols = [], []
    for c in range(clusters):
        lo = c * size
        hi = lo + size if c < clusters - 1 else num_nodes
        width = hi - lo
        count = 6 * width
        rows.append(rng.integers(lo, hi, size=count))
        cols.append(rng.integers(lo, hi, size=count))
    cross = max(2 * clusters, num_nodes // 50)
    rows.append(rng.integers(0, num_nodes, size=cross))
    cols.append(rng.integers(0, num_nodes, size=cross))
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    perm = rng.permutation(num_nodes)
    adjacency = sp.coo_array(
        (0.5 + 0.5 * rng.random(len(rows)), (perm[rows], perm[cols])),
        shape=(num_nodes, num_nodes),
    )
    return Graph(adjacency, name=f"clustered-{num_nodes}", directed=False)


def _sharded_facade(graph, batch: int, steps: int, hidden: int, seed: int):
    """A strict-compatible forecaster (no global mixing) over ``graph``."""
    from types import SimpleNamespace

    from repro.models.baselines.stgcn import STGCN
    from repro.serve import Forecaster

    network = SimpleNamespace(graph=graph, num_nodes=graph.num_nodes)
    model = STGCN(
        network, in_channels=1, input_steps=steps, hidden_dim=hidden, rng=seed,
    )
    rng = np.random.default_rng(seed + 1)
    windows = rng.normal(size=(batch, steps, graph.num_nodes, 1))
    return Forecaster(model), windows


def _shard_activation_peaks(facade, plan, windows: np.ndarray) -> tuple[int, list[int]]:
    """Peak activation bytes: unsharded forward vs each partitioned shard.

    Runs eagerly (tracing off) so the tracker sees every interior
    activation, with ``strict=True`` contexts so any full-``N`` gather —
    the thing the memory claim forbids — fails loudly instead of skewing
    the measurement.
    """
    import threading

    from repro.tensor import (
        HaloExchange,
        PartitionContext,
        partition_scope,
        track_activations,
        traced_execution,
    )

    model = facade.model
    num_shards = plan.num_shards
    with traced_execution(False):
        with track_activations() as full_stats:
            model.predict(windows)
        full_peak = full_stats.peak_bytes

        exchange = HaloExchange(num_shards)
        contexts = [
            PartitionContext(plan, k, exchange, strict=True)
            for k in range(num_shards)
        ]
        peaks: list = [None] * num_shards
        errors: list = []

        def worker(k: int) -> None:
            try:
                local = windows[..., plan.owned(k), :]
                with track_activations() as stats:
                    with partition_scope(contexts[k]):
                        model.predict(local)
                peaks[k] = stats.peak_bytes
            except BaseException as exc:  # unblock peers stuck in a gather
                errors.append(exc)
                exchange.fail(exc)

        threads = [
            threading.Thread(target=worker, args=(k,), daemon=True)
            for k in range(num_shards)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
    return full_peak, peaks


def sharding_leg(scale: str, seed: int) -> dict:
    """Partition-mode serving: exactness, cut quality, per-shard memory."""
    import time

    from repro.graph.sparse import spatial_mode
    from repro.serve.sharding import ShardedForecaster, ShardPlanner

    num_nodes, clusters, shard_counts, batch, steps, hidden = SHARDING_SCALES[scale]
    record: dict = {
        "num_nodes": num_nodes,
        "clusters": clusters,
        "shard_counts": list(shard_counts),
        "sweep": [],
        "memory": [],
    }
    with spatial_mode("sparse"):
        graph = _clustered_graph(num_nodes, clusters, seed)
        facade, windows = _sharded_facade(graph, batch, steps, hidden, seed)

        started = time.perf_counter()
        direct = facade.predict(windows)
        record["direct_seconds"] = time.perf_counter() - started

        # Exactness + accuracy-vs-cut sweep (traced path, like production).
        for strategy in ("contiguous", "mincut"):
            for shards in shard_counts:
                with ShardedForecaster(
                    facade, shards, mode="partition", strategy=strategy,
                    strict=True,
                ) as sharded:
                    started = time.perf_counter()
                    stitched = sharded.predict(windows)
                    elapsed = time.perf_counter() - started
                    exact = bool(np.array_equal(stitched, direct))
                    if not exact:
                        raise AssertionError(
                            f"partitioned predict diverged from direct at "
                            f"K={shards} strategy={strategy} "
                            f"(max |diff| {np.abs(stitched - direct).max():.3e})"
                        )
                    profile = sharded.halo_profile(2)
                    record["sweep"].append(
                        {
                            "strategy": strategy,
                            "shards": shards,
                            "bit_identical": exact,
                            "max_abs_diff": 0.0,
                            "cut_edge_pairs": int(sharded.plan.cut_edge_pairs),
                            "edge_cut": float(sharded.plan.edge_cut),
                            "max_halo_fraction": profile["max_halo_fraction"],
                            "seconds": elapsed,
                        }
                    )

        # Min-cut must actually beat contiguous ranges on the shuffled graph.
        for shards in shard_counts:
            contiguous = next(
                p for p in record["sweep"]
                if p["strategy"] == "contiguous" and p["shards"] == shards
            )
            mincut = next(
                p for p in record["sweep"]
                if p["strategy"] == "mincut" and p["shards"] == shards
            )
            if mincut["cut_edge_pairs"] >= contiguous["cut_edge_pairs"]:
                raise AssertionError(
                    f"min-cut planner cut {mincut['cut_edge_pairs']} pairs at "
                    f"K={shards}, contiguous cut {contiguous['cut_edge_pairs']}"
                )

        # Memory: per-shard peak activation vs the unsharded forward.
        for shards in shard_counts:
            plan = ShardPlanner(shards, strategy="mincut").plan(graph)
            full_peak, shard_peaks = _shard_activation_peaks(facade, plan, windows)
            profile = graph.halo_profile(plan, 2)
            entries = []
            for k, peak in enumerate(shard_peaks):
                owned = len(plan.owned(k))
                halo_fraction = profile["shards"][k]["halo_fraction"]
                bound_fraction = owned / num_nodes + halo_fraction
                ratio = peak / full_peak
                entries.append(
                    {
                        "shard": k,
                        "owned": owned,
                        "halo": profile["shards"][k]["halo"],
                        "peak_bytes": int(peak),
                        "peak_fraction_of_full": ratio,
                        "bound_fraction": bound_fraction,
                    }
                )
                # Acceptance: per-shard peak activation stays within the
                # owned + halo share of the unsharded peak (25% slack for
                # fixed-size temporaries that do not scale with N).
                if ratio > 1.25 * bound_fraction + 0.05:
                    raise AssertionError(
                        f"shard {k}/{shards} peaked at {ratio:.3f} of the "
                        f"unsharded forward; owned+halo bound is "
                        f"{bound_fraction:.3f}"
                    )
            record["memory"].append(
                {
                    "shards": shards,
                    "full_peak_bytes": int(full_peak),
                    "max_shard_peak_bytes": int(max(shard_peaks)),
                    "max_peak_fraction": max(e["peak_fraction_of_full"] for e in entries),
                    "shards_detail": entries,
                }
            )
    return record


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench", choices=sorted(SWEEPS))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--engine", default="both",
        choices=("thread", "process", "sharding", "both", "all"),
        help="which worker plane(s) to sweep ('both' = thread + process; "
             "'all' adds the memory-sharded partition leg)",
    )
    args = parser.parse_args(argv)

    num_tenants, shard_counts, concurrency, total_requests, num_nodes, num_windows = (
        SWEEPS[args.scale]
    )
    pool = windows = tenants = None
    if args.engine != "sharding":
        pool, windows, _ = build_synthetic_tenants(
            num_tenants=num_tenants, num_nodes=num_nodes, seed=args.seed,
            request_windows=num_windows,
        )
        tenants = pool.resident

    record = {
        "benchmark": "serving",
        "scale": args.scale,
        "seed": args.seed,
        "engine": args.engine,
        "num_nodes": num_nodes,
        "concurrency": concurrency,
        "total_requests": total_requests,
        "sweep": [],
    }

    if args.engine in ("thread", "both"):
        record["parity"] = assert_parity(pool, windows[:8], shard_counts, concurrency)
        for shards in shard_counts:
            for tenant_count in sorted({1, num_tenants}):
                for batching in (False, True):
                    record["sweep"].append(
                        sweep_point(
                            pool, windows, tenants[:tenant_count], shards, batching,
                            concurrency, total_requests,
                        )
                    )

        rows = [
            [
                point["shards"],
                point["tenants"],
                "on" if point["batching"] else "off",
                point["throughput_rps"],
                point["latency_ms"]["p50"],
                point["latency_ms"]["p95"],
                point["latency_ms"]["p99"],
                point["mean_batch_size"],
            ]
            for point in record["sweep"]
        ]
        print(format_table(
            ["shards", "tenants", "batch", "req/s", "p50 ms", "p95 ms", "p99 ms",
             "mean batch"],
            rows,
            title=f"Serving engine — closed loop at concurrency {concurrency} "
                  f"({args.scale})",
        ))

        def point(shards, tenant_count, batching):
            return next(
                p for p in record["sweep"]
                if p["shards"] == shards and p["tenants"] == tenant_count
                and p["batching"] == batching
            )

        baseline = point(1, 1, False)
        batched = point(1, 1, True)
        record["batching_speedup"] = batched["throughput_rps"] / baseline["throughput_rps"]
        print(
            f"dynamic batching speedup at concurrency {concurrency}: "
            f"{record['batching_speedup']:.2f}x "
            f"({baseline['throughput_rps']:.0f} -> {batched['throughput_rps']:.0f} req/s)"
        )
        if args.scale == "bench" and concurrency >= 32 and record["batching_speedup"] < 2.0:
            raise AssertionError(
                f"dynamic batcher delivered only {record['batching_speedup']:.2f}x "
                f"over one-request-at-a-time (>= 2x required at concurrency >= 32)"
            )

        record["pool"] = bench_pool(num_tenants, num_nodes, args.seed)
        print(
            f"pool: {record['pool']['tenants']} tenants x "
            f"{record['pool']['per_tenant_bytes'] / 1024:.0f} KiB, supports built "
            f"{record['pool']['support_builds_for_all_tenants']}x; byte-bounded LRU kept "
            f"{record['pool']['resident']} resident ({record['pool']['evictions']} evictions)"
        )

    if args.engine in ("process", "both"):
        record["process_parity"] = assert_process_parity(pool, windows[:8], concurrency)
        print(f"process-engine parity: {len(record['process_parity'])} tenant(s) "
              f"bit-identical to direct predict and to the threaded engine")
        proc = process_sweep(
            pool, windows, tenants, PROC_WORKERS[args.scale],
            concurrency, total_requests, args.scale,
        )
        record["process"] = proc
        rows = [
            [p["num_workers"], p["shards"], p["tenants"], p["throughput_rps"],
             p["latency_ms"]["p50"], p["latency_ms"]["p95"], p["latency_ms"]["p99"],
             p["mean_batch_size"]]
            for p in proc["sweep"] + [proc["headline"]]
        ]
        print(format_table(
            ["workers", "shards", "tenants", "req/s", "p50 ms", "p95 ms", "p99 ms",
             "mean batch"],
            rows,
            title=f"Process engine — closed loop at concurrency {concurrency} "
                  f"({args.scale})",
        ))
        scaling = proc["scaling"]
        print(
            f"process scaling 1 -> {max(scaling['workers'])} workers: "
            f"{scaling['efficiency_1_to_max']:.2f} efficiency on "
            f"{scaling['cpu_cores']} core(s)"
            f"{'' if scaling['efficiency_asserted'] else ' (recorded, not asserted)'}"
        )
        print(
            f"headline {proc['headline']['tenants']}-tenant / "
            f"{proc['headline']['shards']}-shard batched point: "
            f"{proc['headline']['throughput_rps']:.0f} req/s "
            f"(threaded GIL baseline {GIL_BASELINE_RPS:.0f} req/s)"
        )

    if args.engine in ("sharding", "all"):
        sharding = sharding_leg(args.scale, args.seed)
        record["sharding"] = sharding
        rows = [
            [p["strategy"], p["shards"], "yes" if p["bit_identical"] else "NO",
             p["cut_edge_pairs"], f"{p['edge_cut']:.4f}",
             f"{p['max_halo_fraction']:.4f}", f"{p['seconds']:.2f}"]
            for p in sharding["sweep"]
        ]
        print(format_table(
            ["strategy", "shards", "exact", "cut pairs", "edge cut",
             "max halo frac", "seconds"],
            rows,
            title=f"Memory-sharded partition forward — N={sharding['num_nodes']} "
                  f"({args.scale})",
        ))
        for entry in sharding["memory"]:
            worst = max(entry["shards_detail"], key=lambda e: e["peak_fraction_of_full"])
            print(
                f"K={entry['shards']}: per-shard peak activation "
                f"{entry['max_peak_fraction']:.3f} of unsharded "
                f"({entry['max_shard_peak_bytes'] / 1e6:.1f} MB vs "
                f"{entry['full_peak_bytes'] / 1e6:.1f} MB); worst shard owns "
                f"{worst['owned']} nodes + {worst['halo']} halo "
                f"(owned+halo bound {worst['bound_fraction']:.3f})"
            )

    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    save_json(RESULTS_PATH, history)
    print(f"recorded to {RESULTS_PATH}")
    return record


if __name__ == "__main__":
    main()
