"""Serving-engine benchmark: dynamic batching x tenants x node shards.

A closed-loop load generator (``repro.serve.loadgen``) drives the
:class:`~repro.serve.ServingEngine` over a synthetic multi-tenant scenario
and sweeps the three serving axes:

* **batching** — one-request-at-a-time (``max_batch_size=1``) versus the
  deadline-based dynamic micro-batcher, at fixed concurrency;
* **tenants** — traffic interleaved round-robin over T tenant models that
  share one CSR graph through the byte-bounded :class:`ModelPool`;
* **shards** — node-sharded serving (``replicate`` mode) at K shards.

Correctness is asserted inline before any timing: the batched + sharded
engine must produce *bit-identical* outputs to a direct
``Forecaster.predict`` on the same windows, for every shard count in the
sweep.  At the full ``bench`` scale the dynamic batcher must deliver at
least 2x the unbatched throughput at concurrency >= 32.

Everything records to ``benchmarks/results/BENCH_serving.json`` (p50/p95/
p99 latency, throughput, batching efficiency per sweep point) so the
serving-performance trajectory is tracked per PR.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_serving.py --scale smoke
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

import numpy as np

from repro.experiments.reporting import format_table
from repro.graph.sparse import clear_support_cache, support_cache_stats
from repro.serve import (
    EngineConfig,
    ServingEngine,
    build_synthetic_tenants,
    forecaster_nbytes,
)
from repro.serve.loadgen import serving_sweep_point
from repro.serve.tenancy import ModelPool
from repro.utils.serialization import save_json

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_serving.json"

# (tenants, shard counts, concurrency, total requests, nodes, request windows)
SWEEPS = {
    "smoke": (2, (1, 2), 16, 96, 12, 24),
    "bench": (4, (1, 2, 4), 32, 512, 24, 48),
}


def assert_parity(pool, windows: np.ndarray, shard_counts, concurrency: int) -> list[dict]:
    """Engine output must equal direct predict bit-for-bit, per shard count."""
    checks = []
    for tenant in pool.resident:
        direct = pool.forecaster(tenant).predict(windows)
        for shards in shard_counts:
            config = EngineConfig(
                max_batch_size=max(concurrency // 2, 2), max_delay_ms=2.0,
                num_workers=2, shards=shards,
            )
            with ServingEngine(pool, config) as engine:
                futures = [engine.submit(window, tenant=tenant) for window in windows]
                served = np.stack([future.result(timeout=120) for future in futures])
            if not np.array_equal(served, direct):
                raise AssertionError(
                    f"engine output diverged from direct predict "
                    f"(tenant={tenant}, shards={shards})"
                )
            checks.append({"tenant": tenant, "shards": shards, "bit_identical": True})
    return checks


def sweep_point(pool, windows, tenants, shards: int, batching: bool,
                concurrency: int, total_requests: int) -> dict:
    result = serving_sweep_point(
        pool, windows, tenants, shards=shards, batching=batching,
        concurrency=concurrency, total_requests=total_requests,
    )
    if result["failed"]:
        raise AssertionError(f"{result['failed']} requests failed during the sweep")
    return result


def bench_pool(num_tenants: int, num_nodes: int, seed: int) -> dict:
    """Multi-tenant pool: shared-graph support builds + byte-bounded LRU."""
    clear_support_cache()
    builds_before = support_cache_stats()["graph_support_builds"]
    pool, windows, _ = build_synthetic_tenants(
        num_tenants=num_tenants, num_nodes=num_nodes, seed=seed, request_windows=8,
    )
    for tenant in pool.resident:
        pool.forecaster(tenant).predict(windows[:2])
    builds = support_cache_stats()["graph_support_builds"] - builds_before
    if builds != 1:
        raise AssertionError(
            f"{num_tenants} tenants sharing one graph built supports {builds} times"
        )
    per_tenant = forecaster_nbytes(pool.forecaster(pool.resident[0]))
    # Re-home the tenants into a bounded pool sized for roughly half of
    # them.  Eviction requires a reloadable checkpoint per tenant (put-only
    # tenants are pinned), so save each one to disk and register the paths.
    bound = int(per_tenant * max(num_tenants // 2, 1) + per_tenant // 2)
    bounded = ModelPool(max_bytes=bound, network=pool.network)
    with tempfile.TemporaryDirectory() as staging:
        for tenant in list(pool.resident):
            path = pool.forecaster(tenant).save(Path(staging) / tenant)
            bounded.register(tenant, path)
            bounded.get(tenant)
        stats = bounded.stats()
    if stats["resident_bytes"] > bound:
        raise AssertionError(
            f"pool holds {stats['resident_bytes']} bytes over the {bound} bound"
        )
    return {
        "tenants": num_tenants,
        "per_tenant_bytes": per_tenant,
        "max_bytes": bound,
        "resident_bytes": stats["resident_bytes"],
        "resident": stats["resident"],
        "evictions": stats["evictions"],
        "support_builds_for_all_tenants": builds,
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench", choices=sorted(SWEEPS))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    num_tenants, shard_counts, concurrency, total_requests, num_nodes, num_windows = (
        SWEEPS[args.scale]
    )
    pool, windows, _ = build_synthetic_tenants(
        num_tenants=num_tenants, num_nodes=num_nodes, seed=args.seed,
        request_windows=num_windows,
    )
    tenants = pool.resident

    record = {
        "benchmark": "serving",
        "scale": args.scale,
        "seed": args.seed,
        "num_nodes": num_nodes,
        "concurrency": concurrency,
        "total_requests": total_requests,
        "parity": assert_parity(pool, windows[:8], shard_counts, concurrency),
        "sweep": [],
    }

    for shards in shard_counts:
        for tenant_count in sorted({1, num_tenants}):
            for batching in (False, True):
                record["sweep"].append(
                    sweep_point(
                        pool, windows, tenants[:tenant_count], shards, batching,
                        concurrency, total_requests,
                    )
                )

    rows = [
        [
            point["shards"],
            point["tenants"],
            "on" if point["batching"] else "off",
            point["throughput_rps"],
            point["latency_ms"]["p50"],
            point["latency_ms"]["p95"],
            point["latency_ms"]["p99"],
            point["mean_batch_size"],
        ]
        for point in record["sweep"]
    ]
    print(format_table(
        ["shards", "tenants", "batch", "req/s", "p50 ms", "p95 ms", "p99 ms", "mean batch"],
        rows,
        title=f"Serving engine — closed loop at concurrency {concurrency} ({args.scale})",
    ))

    def point(shards, tenant_count, batching):
        return next(
            p for p in record["sweep"]
            if p["shards"] == shards and p["tenants"] == tenant_count
            and p["batching"] == batching
        )

    baseline = point(1, 1, False)
    batched = point(1, 1, True)
    record["batching_speedup"] = batched["throughput_rps"] / baseline["throughput_rps"]
    print(
        f"dynamic batching speedup at concurrency {concurrency}: "
        f"{record['batching_speedup']:.2f}x "
        f"({baseline['throughput_rps']:.0f} -> {batched['throughput_rps']:.0f} req/s)"
    )
    if args.scale == "bench" and concurrency >= 32 and record["batching_speedup"] < 2.0:
        raise AssertionError(
            f"dynamic batcher delivered only {record['batching_speedup']:.2f}x "
            f"over one-request-at-a-time (>= 2x required at concurrency >= 32)"
        )

    record["pool"] = bench_pool(num_tenants, num_nodes, args.seed)
    print(
        f"pool: {record['pool']['tenants']} tenants x "
        f"{record['pool']['per_tenant_bytes'] / 1024:.0f} KiB, supports built "
        f"{record['pool']['support_builds_for_all_tenants']}x; byte-bounded LRU kept "
        f"{record['pool']['resident']} resident ({record['pool']['evictions']} evictions)"
    )

    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    save_json(RESULTS_PATH, history)
    print(f"recorded to {RESULTS_PATH}")
    return record


if __name__ == "__main__":
    main()
