"""Hot-path micro-benchmark: traced (compiled) vs eager, full step + hot loop.

Measures the numeric hot path on the Fig. 7 efficiency configuration (URCL
on PEMS04) in a 2x2 sweep — {float64, float32} x {eager, traced} — at two
granularities:

* **full step**: the complete URCL training step (RMIR retrieval, mixup,
  contrastive branch, backward, clipping, Adam) plus batched evaluation.
  RMIR's candidate scoring makes this largely numpy-compute-bound, so the
  traced gain here is modest by construction.
* **hot loop**: the part the tracing layer compiles — the backbone train
  step (forward, backward, clip, Adam) and the serving-shaped single-window
  predict — where replay removes all per-op Python dispatch.

Timing methodology: shared-host CPU speed drifts minute to minute, so each
dtype's eager and traced runs are split into *interleaved rounds* (eager
round 1, traced round 1, eager round 2, ...) and the recorded rate is the
best round per mode — both modes sample the same wall-clock windows and a
slow period cannot penalise one mode only.

Traced and eager runs consume identical RNG streams, so the recorded final
losses double as a bit-parity check (``loss_bitwise_equal``).  The Table 3
smoke configuration is also trained at both dtypes and checked to agree
within 1e-3, so the speedups never silently trade away accuracy.

Results are printed as tables and appended to
``benchmarks/results/BENCH_hot_path.json`` so the perf trajectory is
recorded across PRs.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_hot_path.py --steps 40
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.evaluation import evaluate_model
from repro.core.trainer import ContinualTrainer
from repro.data.loader import DataLoader
from repro.experiments.common import make_scenario, make_training, make_urcl
from repro.experiments.reporting import format_table
from repro.nn.losses import mae_loss
from repro.nn.optim import Adam, clip_grad_norm
from repro.tensor import (
    Tensor,
    clear_program_cache,
    default_dtype,
    program_cache_stats,
    run_compiled,
    traced_execution,
)
from repro.utils.serialization import save_json

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_hot_path.json"

DTYPES = ("float64", "float32")
MODES = ("eager", "traced")
ROUNDS = 4

# Full-step f32 steps/sec before the tracing layer landed (ROADMAP item 1).
BASELINE_F32_STEPS_PER_SEC = 8.85


def _collect_batches(dataset, batch_size: int, steps: int, seed: int):
    """Materialise ``steps`` training batches (cycling the loader if short)."""
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, rng=seed)
    batches = []
    iterator = iter(loader)
    while len(batches) < steps:
        try:
            batches.append(next(iterator))
        except StopIteration:
            iterator = iter(loader)
    return batches


def _round_slices(count: int, rounds: int) -> list[slice]:
    rounds = max(1, min(rounds, count))
    size = -(-count // rounds)  # ceil division
    return [slice(start, min(start + size, count)) for start in range(0, count, size)]


def _cache_summary() -> dict:
    stats = program_cache_stats()
    return {
        key: stats[key]
        for key in (
            "captures", "replays", "backward_replays",
            "eager_calls", "untraceable", "shape_misses",
        )
    }


class _FullStepRunner:
    """One mode's full URCL training run, steppable in timed rounds."""

    def __init__(self, dtype: str, steps: int, seed: int, dataset: str,
                 scale: str, traced: bool):
        self.dtype = dtype
        self.traced = traced
        with default_dtype(dtype), traced_execution(traced):
            self.scenario = make_scenario(dataset, scale, seed=seed + 7)
            self.training = make_training(scale, seed=seed)
            self.model = make_urcl(self.scenario, scale, seed=seed)
            self.trainer = ContinualTrainer(self.model, self.training)
            self.base = self.scenario.base_set
            self.batches = _collect_batches(
                self.base.train, self.training.batch_size, steps, seed
            )
        self.last_step = None

    def _one_step(self, batch):
        # Mirrors ContinualTrainer._train_one_epoch exactly, clipping included.
        step = self.model.training_step(
            batch.inputs, batch.targets, set_name=self.base.name
        )
        self.model.zero_grad()
        step.total_loss.backward()
        if self.training.grad_clip > 0:
            clip_grad_norm(self.model.parameters(), self.training.grad_clip)
        self.trainer.optimizer.step()
        return step

    def warmup(self) -> None:
        with default_dtype(self.dtype), traced_execution(self.traced):
            self._one_step(self.batches[0])

    def run_round(self, batch_slice: slice) -> tuple[int, float]:
        """Run a contiguous slice of the step stream; return (steps, seconds)."""
        batches = self.batches[batch_slice]
        with default_dtype(self.dtype), traced_execution(self.traced):
            start = time.perf_counter()
            for batch in batches:
                self.last_step = self._one_step(batch)
            return len(batches), time.perf_counter() - start

    def evaluate(self) -> tuple[int, float, float]:
        """Batched eval over the test split; return (windows, seconds, mae)."""
        with default_dtype(self.dtype), traced_execution(self.traced):
            start = time.perf_counter()
            metrics = evaluate_model(
                self.model.backbone,
                self.base.test,
                batch_size=self.training.eval_batch_size,
                scaler=self.scenario.scaler,
                target_channel=(
                    self.scenario.spec.target_channel if self.scenario.spec else None
                ),
            )
            elapsed = time.perf_counter() - start
        return len(self.base.test), elapsed, metrics.mae


class _HotLoopRunner:
    """One mode's compiled hot loop: backbone train step + serving predict.

    This isolates what the tracing layer accelerates — the per-op Python
    dispatch of the train/predict loop — from the URCL extras (RMIR
    scoring, contrastive branch) that surround it in the full step.
    """

    def __init__(self, dtype: str, seed: int, dataset: str, scale: str,
                 traced: bool):
        self.dtype = dtype
        self.traced = traced
        with default_dtype(dtype), traced_execution(traced):
            scenario = make_scenario(dataset, scale, seed=seed + 7)
            training = make_training(scale, seed=seed)
            model = make_urcl(scenario, scale, seed=seed)
            self.backbone = model.backbone
            batch = _collect_batches(
                scenario.base_set.train, training.batch_size, 1, seed
            )[0]
            self.inputs, self.targets = batch.inputs, batch.targets
            self.window = np.asarray(batch.inputs[:1])
            self.grad_clip = training.grad_clip
            self.optimizer = Adam(
                self.backbone.parameters(),
                lr=training.learning_rate,
                weight_decay=training.weight_decay,
            )
        self.final_loss = None
        self.prediction = None

    def _one_step(self):
        predictions = run_compiled(
            self.backbone, self.backbone.forward, Tensor(self.inputs), kind="train"
        )
        loss = mae_loss(predictions, Tensor(self.targets))
        self.backbone.zero_grad()
        loss.backward()
        if self.grad_clip > 0:
            clip_grad_norm(self.backbone.parameters(), self.grad_clip)
        self.optimizer.step()
        return loss

    def warmup(self) -> None:
        with default_dtype(self.dtype), traced_execution(self.traced):
            self.backbone.train(True)
            self._one_step()
            self.backbone.train(False)
            self.backbone.predict(self.window)

    def run_train_round(self, iters: int) -> float:
        with default_dtype(self.dtype), traced_execution(self.traced):
            self.backbone.train(True)
            start = time.perf_counter()
            for _ in range(iters):
                loss = self._one_step()
            elapsed = time.perf_counter() - start
            self.final_loss = float(loss.item())
        return elapsed

    def run_predict_round(self, iters: int) -> float:
        with default_dtype(self.dtype), traced_execution(self.traced):
            self.backbone.train(False)
            start = time.perf_counter()
            for _ in range(iters):
                self.prediction = self.backbone.predict(self.window)
            return time.perf_counter() - start


def bench_full_step(dtype: str, steps: int, seed: int, dataset: str,
                    scale: str) -> dict:
    """Interleaved eager/traced sweep of the full URCL training step."""
    clear_program_cache()
    runners = {
        mode: _FullStepRunner(dtype, steps, seed, dataset, scale, mode == "traced")
        for mode in MODES
    }
    for runner in runners.values():
        runner.warmup()
    best = {mode: 0.0 for mode in MODES}
    for batch_slice in _round_slices(steps, ROUNDS):
        for mode, runner in runners.items():
            count, elapsed = runner.run_round(batch_slice)
            best[mode] = max(best[mode], count / elapsed)
    eval_best, eval_mae = {mode: 0.0 for mode in MODES}, {}
    for _ in range(2):  # two interleaved eval passes, best-of
        for mode, runner in runners.items():
            windows, elapsed, mae = runner.evaluate()
            eval_best[mode] = max(eval_best[mode], windows / elapsed)
            eval_mae[mode] = mae
    result = {}
    for mode, runner in runners.items():
        result[mode] = {
            "steps_per_sec": best[mode],
            "eval_windows_per_sec": eval_best[mode],
            "final_loss": runner.last_step.task_loss,
            "eval_mae": eval_mae[mode],
        }
    result["traced"]["program_cache"] = _cache_summary()
    return result


def bench_hot_loop(dtype: str, steps: int, seed: int, dataset: str,
                   scale: str) -> dict:
    """Interleaved eager/traced sweep of the compiled train/predict hot loop."""
    clear_program_cache()
    train_iters = max(steps // 2, 5)
    predict_iters = max(5 * steps, 25)
    runners = {
        mode: _HotLoopRunner(dtype, seed, dataset, scale, mode == "traced")
        for mode in MODES
    }
    for runner in runners.values():
        runner.warmup()
    train_best = {mode: 0.0 for mode in MODES}
    predict_best = {mode: 0.0 for mode in MODES}
    for _ in range(ROUNDS):
        for mode, runner in runners.items():
            train_best[mode] = max(
                train_best[mode], train_iters / runner.run_train_round(train_iters)
            )
        for mode, runner in runners.items():
            predict_best[mode] = max(
                predict_best[mode],
                predict_iters / runner.run_predict_round(predict_iters),
            )
    result = {}
    for mode, runner in runners.items():
        result[mode] = {
            "train_steps_per_sec": train_best[mode],
            "predict_windows_per_sec": predict_best[mode],
            "final_loss": runner.final_loss,
            "prediction_checksum": float(
                np.asarray(runner.prediction, dtype=np.float64).sum()
            ),
        }
    result["traced"]["program_cache"] = _cache_summary()
    return result


def bench_metric_parity(seed: int, dataset: str) -> dict:
    """Table 3 smoke run at both dtypes; returns metrics and max |diff|."""
    metrics_by_dtype = {}
    for dtype in DTYPES:
        with default_dtype(dtype):
            scenario = make_scenario(dataset, "smoke", seed=seed + 7)
            training = make_training("smoke", seed=seed)
            model = make_urcl(scenario, "smoke", seed=seed)
            result = ContinualTrainer(model, training).run(scenario)
            final = result.sets[-1].metrics
            metrics_by_dtype[dtype] = {
                "mae": final.mae,
                "rmse": final.rmse,
                "mape": final.mape,
            }
    reference, other = (metrics_by_dtype[name] for name in DTYPES)
    diffs = {
        key: abs(reference[key] - other[key])
        for key in reference
        if np.isfinite(reference[key]) and np.isfinite(other[key])
    }
    metrics_by_dtype["max_abs_diff"] = max(diffs.values()) if diffs else 0.0
    return metrics_by_dtype


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=40, help="training steps per run")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dataset", default="pems04", help="Fig. 7 uses PEMS04")
    parser.add_argument("--scale", default="bench", choices=("smoke", "bench", "paper"))
    parser.add_argument("--skip-parity", action="store_true", help="skip the metric parity run")
    args = parser.parse_args(argv)

    record = {
        "benchmark": "hot_path",
        "dataset": args.dataset,
        "scale": args.scale,
        "steps": args.steps,
        "seed": args.seed,
        "baseline_f32_steps_per_sec": BASELINE_F32_STEPS_PER_SEC,
        "timings": {},
        "hot_loop": {},
        "traced_speedup": {},
    }
    for dtype in DTYPES:
        record["timings"][dtype] = bench_full_step(
            dtype, args.steps, args.seed, args.dataset, args.scale
        )
        record["hot_loop"][dtype] = bench_hot_loop(
            dtype, args.steps, args.seed, args.dataset, args.scale
        )
        full, loop = record["timings"][dtype], record["hot_loop"][dtype]
        record["traced_speedup"][dtype] = {
            "full_step": full["traced"]["steps_per_sec"] / full["eager"]["steps_per_sec"],
            "eval": (
                full["traced"]["eval_windows_per_sec"]
                / full["eager"]["eval_windows_per_sec"]
            ),
            "hot_loop_train": (
                loop["traced"]["train_steps_per_sec"]
                / loop["eager"]["train_steps_per_sec"]
            ),
            "predict": (
                loop["traced"]["predict_windows_per_sec"]
                / loop["eager"]["predict_windows_per_sec"]
            ),
            # Same seeds, same RNG streams: replay must match eager bit-for-bit.
            "loss_bitwise_equal": (
                full["traced"]["final_loss"] == full["eager"]["final_loss"]
                and loop["traced"]["final_loss"] == loop["eager"]["final_loss"]
            ),
        }
    f32_loop = record["hot_loop"]["float32"]["traced"]["train_steps_per_sec"]
    f32_full = record["timings"]["float32"]["traced"]["steps_per_sec"]
    record["f32_vs_baseline"] = {
        "full_step": f32_full / BASELINE_F32_STEPS_PER_SEC,
        "hot_loop_train": f32_loop / BASELINE_F32_STEPS_PER_SEC,
    }
    if not args.skip_parity:
        record["metric_parity"] = bench_metric_parity(args.seed, args.dataset)

    headers = [
        "dtype", "mode", "full steps/s", "eval windows/s",
        "hot-loop steps/s", "predict/s", "final loss",
    ]
    rows = [
        [
            dtype,
            mode,
            record["timings"][dtype][mode]["steps_per_sec"],
            record["timings"][dtype][mode]["eval_windows_per_sec"],
            record["hot_loop"][dtype][mode]["train_steps_per_sec"],
            record["hot_loop"][dtype][mode]["predict_windows_per_sec"],
            record["timings"][dtype][mode]["final_loss"],
        ]
        for dtype in DTYPES
        for mode in MODES
    ]
    print(format_table(
        headers, rows,
        title=f"Hot path — URCL on {args.dataset} ({args.scale}), traced vs eager",
    ))
    for dtype in DTYPES:
        s = record["traced_speedup"][dtype]
        print(
            f"{dtype} traced speedup: {s['full_step']:.2f}x full step, "
            f"{s['eval']:.2f}x eval, {s['hot_loop_train']:.2f}x hot-loop train, "
            f"{s['predict']:.2f}x predict "
            f"(bit-parity {'ok' if s['loss_bitwise_equal'] else 'FAILED'})"
        )
    base = record["f32_vs_baseline"]
    print(
        f"f32 vs pre-compilation baseline ({BASELINE_F32_STEPS_PER_SEC} steps/s): "
        f"{base['full_step']:.2f}x full step, {base['hot_loop_train']:.2f}x hot-loop train"
    )
    if "metric_parity" in record:
        diff = record["metric_parity"]["max_abs_diff"]
        print(f"metric parity (Table 3 smoke): max |f32 - f64| = {diff:.2e}")

    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    save_json(RESULTS_PATH, history)
    print(f"recorded to {RESULTS_PATH}")
    return record


if __name__ == "__main__":
    main()
