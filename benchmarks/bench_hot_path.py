"""Hot-path micro-benchmark: training steps/sec and eval windows/sec.

Measures the numeric hot path end to end on the Fig. 7 efficiency
configuration (URCL on PEMS04): full training steps (forward, backward,
gradient clipping, Adam) and batched evaluation, at float64 and float32.
It also trains the Table 3 smoke configuration at both dtypes and checks
that MAE/RMSE/MAPE agree within 1e-3, so the speedup never silently trades
away accuracy.

Results are printed as a table and appended to
``benchmarks/results/BENCH_hot_path.json`` so the perf trajectory is
recorded across PRs.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_hot_path.py --steps 40
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.evaluation import evaluate_model
from repro.core.trainer import ContinualTrainer
from repro.data.loader import DataLoader
from repro.experiments.common import make_scenario, make_training, make_urcl
from repro.nn.optim import clip_grad_norm
from repro.experiments.reporting import format_table
from repro.tensor import default_dtype
from repro.utils.serialization import save_json

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_hot_path.json"

DTYPES = ("float64", "float32")


def _collect_batches(dataset, batch_size: int, steps: int, seed: int):
    """Materialise ``steps`` training batches (cycling the loader if short)."""
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, rng=seed)
    batches = []
    iterator = iter(loader)
    while len(batches) < steps:
        try:
            batches.append(next(iterator))
        except StopIteration:
            iterator = iter(loader)
    return batches


def bench_training(dtype: str, steps: int, seed: int, dataset: str, scale: str) -> dict:
    """Steps/sec of the full URCL training step at ``dtype``."""
    with default_dtype(dtype):
        scenario = make_scenario(dataset, scale, seed=seed + 7)
        training = make_training(scale, seed=seed)
        model = make_urcl(scenario, scale, seed=seed)
        trainer = ContinualTrainer(model, training)
        base = scenario.base_set
        batches = _collect_batches(base.train, training.batch_size, steps, seed)

        def one_step(batch):
            # Mirrors ContinualTrainer._train_one_epoch exactly, clipping included.
            step = model.training_step(batch.inputs, batch.targets, set_name=base.name)
            model.zero_grad()
            step.total_loss.backward()
            if training.grad_clip > 0:
                clip_grad_norm(model.parameters(), training.grad_clip)
            trainer.optimizer.step()
            return step

        one_step(batches[0])  # warmup: builds buffers, primes the replay path
        start = time.perf_counter()
        for batch in batches:
            step = one_step(batch)
        elapsed = time.perf_counter() - start

        eval_start = time.perf_counter()
        metrics = evaluate_model(
            model.backbone,
            base.test,
            batch_size=training.eval_batch_size,
            scaler=scenario.scaler,
            target_channel=scenario.spec.target_channel if scenario.spec else None,
        )
        eval_elapsed = time.perf_counter() - eval_start
        eval_windows = len(base.test)

    return {
        "steps_per_sec": steps / elapsed,
        "eval_windows_per_sec": eval_windows / eval_elapsed,
        "final_loss": step.task_loss,
        "eval_mae": metrics.mae,
    }


def bench_metric_parity(seed: int, dataset: str) -> dict:
    """Table 3 smoke run at both dtypes; returns metrics and max |diff|."""
    metrics_by_dtype = {}
    for dtype in DTYPES:
        with default_dtype(dtype):
            scenario = make_scenario(dataset, "smoke", seed=seed + 7)
            training = make_training("smoke", seed=seed)
            model = make_urcl(scenario, "smoke", seed=seed)
            result = ContinualTrainer(model, training).run(scenario)
            final = result.sets[-1].metrics
            metrics_by_dtype[dtype] = {
                "mae": final.mae,
                "rmse": final.rmse,
                "mape": final.mape,
            }
    reference, other = (metrics_by_dtype[name] for name in DTYPES)
    diffs = {
        key: abs(reference[key] - other[key])
        for key in reference
        if np.isfinite(reference[key]) and np.isfinite(other[key])
    }
    metrics_by_dtype["max_abs_diff"] = max(diffs.values()) if diffs else 0.0
    return metrics_by_dtype


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=40, help="training steps per dtype")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dataset", default="pems04", help="Fig. 7 uses PEMS04")
    parser.add_argument("--scale", default="bench", choices=("smoke", "bench", "paper"))
    parser.add_argument("--skip-parity", action="store_true", help="skip the metric parity run")
    args = parser.parse_args(argv)

    record = {
        "benchmark": "hot_path",
        "dataset": args.dataset,
        "scale": args.scale,
        "steps": args.steps,
        "seed": args.seed,
        "timings": {},
    }
    for dtype in DTYPES:
        record["timings"][dtype] = bench_training(
            dtype, steps=args.steps, seed=args.seed, dataset=args.dataset, scale=args.scale
        )
    f64 = record["timings"]["float64"]
    f32 = record["timings"]["float32"]
    record["speedup_steps_per_sec"] = f32["steps_per_sec"] / f64["steps_per_sec"]
    record["speedup_eval_windows_per_sec"] = (
        f32["eval_windows_per_sec"] / f64["eval_windows_per_sec"]
    )
    if not args.skip_parity:
        record["metric_parity"] = bench_metric_parity(args.seed, args.dataset)

    headers = ["dtype", "train steps/s", "eval windows/s", "final loss", "eval MAE"]
    rows = [
        [
            dtype,
            values["steps_per_sec"],
            values["eval_windows_per_sec"],
            values["final_loss"],
            values["eval_mae"],
        ]
        for dtype, values in record["timings"].items()
    ]
    print(format_table(headers, rows, title=f"Hot path — URCL on {args.dataset} ({args.scale})"))
    print(f"float32 speedup: {record['speedup_steps_per_sec']:.2f}x training, "
          f"{record['speedup_eval_windows_per_sec']:.2f}x eval")
    if "metric_parity" in record:
        diff = record["metric_parity"]["max_abs_diff"]
        print(f"metric parity (Table 3 smoke): max |f32 - f64| = {diff:.2e}")

    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    save_json(RESULTS_PATH, history)
    print(f"recorded to {RESULTS_PATH}")
    return record


if __name__ == "__main__":
    main()
