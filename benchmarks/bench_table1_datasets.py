"""Table I — dataset statistics of the four traffic benchmarks."""

import numpy as np

from repro.experiments import run_table1

from conftest import record_result


def test_table1_dataset_statistics(benchmark, scale, seed):
    result = benchmark.pedantic(
        run_table1, kwargs={"scale": scale, "seed": seed}, rounds=1, iterations=1
    )
    record_result("table1_datasets", result)
    assert len(result["rows"]) == 4
    # Paper node counts are reported verbatim in the table.
    paper_nodes = {row[0]: row[4] for row in result["rows"]}
    assert paper_nodes["metr-la"] == 207
    assert paper_nodes["pems-bay"] == 325
    assert paper_nodes["pems04"] == 307
    assert paper_nodes["pems08"] == 170
    # Generated series are non-degenerate.
    assert all(row[6] > 0 for row in result["rows"])
