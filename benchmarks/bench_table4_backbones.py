"""Table IV — effect of different backbones (DCRNN, GeoMAN, GraphWaveNet) in URCL.

Paper shape to reproduce: all three backbones reach comparable accuracy
(the framework is backbone-agnostic), with the GraphWaveNet variant best in
most cells.
"""

import numpy as np

from repro.experiments import run_table4

from conftest import record_result


def test_table4_backbone_study(benchmark, scale, seed):
    result = benchmark.pedantic(
        run_table4, kwargs={"scale": scale, "seed": seed}, rounds=1, iterations=1
    )
    record_result("table4_backbones", result)

    for dataset, methods in result["results"].items():
        assert {"DCRNN", "GEOMAN", "URCL"} <= set(methods)
        means = {
            name: np.mean([entry["mae"] for entry in per_set.values()])
            for name, per_set in methods.items()
        }
        assert all(np.isfinite(value) for value in means.values())
        # Backbone-agnosticism: no backbone collapses (within 4x of the best).
        best = min(means.values())
        assert max(means.values()) <= 4.0 * best, (dataset, means)
