"""Spatial-kernel benchmark: CSR diffusion convolution vs the dense path.

Sweeps node counts and graph densities, timing a full
``DiffusionGraphConv`` forward + backward (the spatial-mixing hot path of
every model in the zoo) with supports forced dense versus the auto
sparse/dense kernel.  Also measures the content-keyed support cache on the
URCL adjacency-override path and records everything to
``benchmarks/results/BENCH_spatial.json`` so the perf trajectory is
tracked per PR.

Correctness is asserted inline: dense and auto outputs must agree to
float32-level tolerance on every configuration.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_spatial.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_spatial.py --scale smoke
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.graph import sparse as graph_sparse
from repro.models.gcn import DiffusionGraphConv
from repro.tensor import Tensor
from repro.experiments.reporting import format_table
from repro.utils.serialization import save_json

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_spatial.json"

# (node counts, densities, batch, time steps, channels, repetitions)
SWEEPS = {
    "smoke": ((96, 512), (0.05,), 2, 4, 8, 2),
    "bench": ((200, 500, 1000, 2000), (0.01, 0.05, 0.2, 0.5), 4, 6, 16, 3),
}


def make_adjacency(num_nodes: int, density: float, rng: np.random.Generator) -> np.ndarray:
    """Random weighted directed graph with roughly ``density`` non-zeros."""
    mask = rng.random((num_nodes, num_nodes)) < density
    np.fill_diagonal(mask, False)
    return np.where(mask, rng.random((num_nodes, num_nodes)), 0.0)


def time_forward_backward(conv: DiffusionGraphConv, x_data: np.ndarray, reps: int) -> tuple[float, np.ndarray]:
    """Median seconds for one forward+backward, plus the forward output."""
    timings = []
    output = None
    for _ in range(reps + 1):  # first iteration is warmup
        x = Tensor(x_data, requires_grad=True)
        conv.zero_grad()
        start = time.perf_counter()
        out = conv(x)
        out.sum().backward()
        timings.append(time.perf_counter() - start)
        output = out.data
    return float(np.median(timings[1:])), output


def bench_config(num_nodes: int, graph_density: float, batch: int, steps: int,
                 channels: int, reps: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    adjacency = make_adjacency(num_nodes, graph_density, rng)
    x_data = rng.normal(size=(batch, steps, num_nodes, channels))

    graph_sparse.clear_support_cache()
    with graph_sparse.spatial_mode("dense"):
        conv_dense = DiffusionGraphConv(channels, channels, adjacency=adjacency, rng=seed)
        dense_seconds, dense_out = time_forward_backward(conv_dense, x_data, reps)
    with graph_sparse.spatial_mode("auto"):
        conv_auto = DiffusionGraphConv(channels, channels, adjacency=adjacency, rng=seed)
        auto_seconds, auto_out = time_forward_backward(conv_auto, x_data, reps)
        support_modes = [
            "csr" if graph_sparse.sp.issparse(s) else "dense"
            for s in conv_auto._static_supports
        ]

    max_abs_diff = float(np.max(np.abs(dense_out - auto_out)))
    scale = float(np.max(np.abs(dense_out))) or 1.0
    tolerance = 1e-5 * scale  # float32-level agreement
    if max_abs_diff > tolerance:
        raise AssertionError(
            f"dense/auto mismatch at N={num_nodes} d={graph_density}: "
            f"{max_abs_diff:.3e} > {tolerance:.3e}"
        )
    return {
        "num_nodes": num_nodes,
        "graph_density": graph_density,
        "support_densities": [round(graph_sparse.density(s), 4) for s in conv_auto._static_supports],
        "support_modes": support_modes,
        "dense_seconds": dense_seconds,
        "auto_seconds": auto_seconds,
        "speedup": dense_seconds / auto_seconds,
        "max_abs_diff": max_abs_diff,
    }


def bench_support_cache(num_nodes: int, seed: int) -> dict:
    """Cost of supports_for on a repeated adjacency override: miss vs hit."""
    rng = np.random.default_rng(seed)
    adjacency = make_adjacency(num_nodes, 0.05, rng)
    conv = DiffusionGraphConv(4, 4, adjacency=adjacency, rng=seed)
    override = adjacency.copy()  # URCL passes network.adjacency.copy() per period

    graph_sparse.clear_support_cache()
    start = time.perf_counter()
    conv.supports_for(override)
    miss_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(10):
        conv.supports_for(override.copy())  # fresh array, same content
    hit_seconds = (time.perf_counter() - start) / 10

    stats = graph_sparse.support_cache_stats()
    return {
        "num_nodes": num_nodes,
        "miss_seconds": miss_seconds,
        "hit_seconds": hit_seconds,
        "speedup": miss_seconds / hit_seconds if hit_seconds > 0 else float("inf"),
        "cache": stats,
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench", choices=sorted(SWEEPS))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    node_counts, densities, batch, steps, channels, reps = SWEEPS[args.scale]
    record = {
        "benchmark": "spatial",
        "scale": args.scale,
        "seed": args.seed,
        "batch": batch,
        "time_steps": steps,
        "channels": channels,
        "configs": [],
    }
    for num_nodes in node_counts:
        for graph_density in densities:
            record["configs"].append(
                bench_config(num_nodes, graph_density, batch, steps, channels, reps, args.seed)
            )
    record["support_cache"] = bench_support_cache(max(node_counts), args.seed)

    headers = ["N", "density", "modes", "dense s", "auto s", "speedup", "max|diff|"]
    rows = [
        [
            c["num_nodes"],
            c["graph_density"],
            "/".join(c["support_modes"]),
            c["dense_seconds"],
            c["auto_seconds"],
            c["speedup"],
            c["max_abs_diff"],
        ]
        for c in record["configs"]
    ]
    print(format_table(headers, rows, title=f"Spatial mixing — dense vs auto ({args.scale})"))
    cache = record["support_cache"]
    print(
        f"support cache (N={cache['num_nodes']}): miss {cache['miss_seconds']*1e3:.1f} ms, "
        f"hit {cache['hit_seconds']*1e3:.2f} ms ({cache['speedup']:.0f}x)"
    )

    sparse_wins = [
        c["speedup"] for c in record["configs"]
        if c["num_nodes"] >= 500 and "csr" in c["support_modes"]
    ]
    if sparse_wins:
        record["best_sparse_speedup"] = max(sparse_wins)
        print(f"best sparse speedup at N>=500: {record['best_sparse_speedup']:.2f}x")
    fallbacks = [
        c["speedup"] for c in record["configs"] if "csr" not in c["support_modes"]
    ]
    if fallbacks:
        record["worst_fallback_speedup"] = min(fallbacks)
        print(f"worst dense-fallback ratio: {record['worst_fallback_speedup']:.2f}x")

    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    save_json(RESULTS_PATH, history)
    print(f"recorded to {RESULTS_PATH}")
    return record


if __name__ == "__main__":
    main()
