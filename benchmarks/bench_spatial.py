"""Spatial-kernel benchmark: CSR diffusion convolution vs the dense path.

Sweeps node counts and graph densities, timing a full
``DiffusionGraphConv`` forward + backward (the spatial-mixing hot path of
every model in the zoo) with supports forced dense versus the auto
sparse/dense kernel.  Three further sections:

* **fused** — the fused multi-support ``spmm_multi`` (one CSR traversal for
  all S supports) against the per-support ``spmm`` loop;
* **augmented** — the URCL augmented-supports path (augmentation apply +
  support construction + forward + backward per step) under the dense
  fallback versus the CSR ``GraphDelta`` path;
* the content-keyed support cache on the adjacency-override path.

Everything records to ``benchmarks/results/BENCH_spatial.json`` so the
perf trajectory is tracked per PR.  Correctness is asserted inline: dense
and sparse outputs must agree to float32-level tolerance on every
configuration (the augmented section additionally requires the two modes
to draw identical augmentation randomness).

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_spatial.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_spatial.py --scale smoke
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.augmentation import DropEdge, DropNodes, SubGraph
from repro.graph import Graph, sparse as graph_sparse
from repro.models.gcn import DiffusionGraphConv
from repro.tensor import Tensor
from repro.experiments.reporting import format_table
from repro.utils.serialization import save_json

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_spatial.json"

# (node counts, densities, batch, time steps, channels, repetitions)
SWEEPS = {
    "smoke": ((96, 512), (0.05,), 2, 4, 8, 2),
    "bench": ((200, 500, 1000, 2000), (0.01, 0.05, 0.2, 0.5), 4, 6, 16, 3),
}

# The fused/augmented sections only make sense where CSR wins; cap the
# density so the full sweep stays minutes, not hours.
SPARSE_SECTION_MAX_DENSITY = 0.05


def make_adjacency(num_nodes: int, density: float, rng: np.random.Generator) -> np.ndarray:
    """Random weighted directed graph with roughly ``density`` non-zeros."""
    mask = rng.random((num_nodes, num_nodes)) < density
    np.fill_diagonal(mask, False)
    return np.where(mask, rng.random((num_nodes, num_nodes)), 0.0)


def time_forward_backward(conv: DiffusionGraphConv, x_data: np.ndarray, reps: int) -> tuple[float, np.ndarray]:
    """Median seconds for one forward+backward, plus the forward output."""
    timings = []
    output = None
    for _ in range(reps + 1):  # first iteration is warmup
        x = Tensor(x_data, requires_grad=True)
        conv.zero_grad()
        start = time.perf_counter()
        out = conv(x)
        out.sum().backward()
        timings.append(time.perf_counter() - start)
        output = out.data
    return float(np.median(timings[1:])), output


def bench_config(num_nodes: int, graph_density: float, batch: int, steps: int,
                 channels: int, reps: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    adjacency = make_adjacency(num_nodes, graph_density, rng)
    x_data = rng.normal(size=(batch, steps, num_nodes, channels))

    graph_sparse.clear_support_cache()
    with graph_sparse.spatial_mode("dense"):
        conv_dense = DiffusionGraphConv(channels, channels, adjacency=adjacency, rng=seed)
        dense_seconds, dense_out = time_forward_backward(conv_dense, x_data, reps)
    with graph_sparse.spatial_mode("auto"):
        conv_auto = DiffusionGraphConv(channels, channels, adjacency=adjacency, rng=seed)
        auto_seconds, auto_out = time_forward_backward(conv_auto, x_data, reps)
        support_modes = [
            "csr" if graph_sparse.sp.issparse(s) else "dense"
            for s in conv_auto._static_supports
        ]

    max_abs_diff = float(np.max(np.abs(dense_out - auto_out)))
    scale = float(np.max(np.abs(dense_out))) or 1.0
    tolerance = 1e-5 * scale  # float32-level agreement
    if max_abs_diff > tolerance:
        raise AssertionError(
            f"dense/auto mismatch at N={num_nodes} d={graph_density}: "
            f"{max_abs_diff:.3e} > {tolerance:.3e}"
        )
    return {
        "num_nodes": num_nodes,
        "graph_density": graph_density,
        "support_densities": [round(graph_sparse.density(s), 4) for s in conv_auto._static_supports],
        "support_modes": support_modes,
        "dense_seconds": dense_seconds,
        "auto_seconds": auto_seconds,
        "speedup": dense_seconds / auto_seconds,
        "max_abs_diff": max_abs_diff,
    }


def bench_fused(num_nodes: int, graph_density: float, batch: int, steps: int,
                channels: int, reps: int, seed: int) -> dict:
    """Fused multi-support spmm vs the per-support loop (both forced CSR)."""
    rng = np.random.default_rng(seed)
    adjacency = make_adjacency(num_nodes, graph_density, rng)
    x_data = rng.normal(size=(batch, steps, num_nodes, channels))
    outputs = {}
    timings = {}
    with graph_sparse.spatial_mode("sparse"):
        graph = Graph(adjacency, name="bench-fused")
        conv = DiffusionGraphConv(channels, channels, adjacency=graph, rng=seed)
        for label, enabled in (("loop", False), ("fused", True)):
            graph_sparse.set_fused_spmm(enabled)
            try:
                seconds, out = time_forward_backward(conv, x_data, reps)
            finally:
                graph_sparse.set_fused_spmm(True)
            timings[label] = seconds
            outputs[label] = out
    max_abs_diff = float(np.max(np.abs(outputs["loop"] - outputs["fused"])))
    scale = float(np.max(np.abs(outputs["loop"]))) or 1.0
    if max_abs_diff > 1e-5 * scale:
        raise AssertionError(
            f"fused/loop mismatch at N={num_nodes} d={graph_density}: {max_abs_diff:.3e}"
        )
    return {
        "num_nodes": num_nodes,
        "graph_density": graph_density,
        "loop_seconds": timings["loop"],
        "fused_seconds": timings["fused"],
        "speedup": timings["loop"] / timings["fused"],
        "max_abs_diff": max_abs_diff,
    }


def bench_threaded(num_nodes: int, graph_density: float, batch: int, steps: int,
                   channels: int, reps: int, seed: int) -> dict:
    """Chunked multithreaded CSR spmm vs single-threaded (bit-identical).

    The worker count comes from :func:`os.cpu_count`; on a single-core box
    the section still runs (threads=2) to exercise the chunked kernel, but
    only parity — never a speedup — is asserted.
    """
    import os

    from repro.tensor import get_spmm_threads, set_spmm_threads, spmm

    rng = np.random.default_rng(seed)
    adjacency = make_adjacency(num_nodes, graph_density, rng)
    x_data = rng.normal(size=(batch, steps, num_nodes, channels))
    threads = max(2, os.cpu_count() or 1)

    with graph_sparse.spatial_mode("sparse"):
        graph = Graph(adjacency, name="bench-threaded")
        support = graph.conv_supports(2)[0]
    x = Tensor(x_data)

    def run(label):
        timings = []
        out = None
        for _ in range(reps + 1):  # first iteration is warmup
            start = time.perf_counter()
            out = spmm(support, x).data
            timings.append(time.perf_counter() - start)
        return float(np.median(timings[1:])), out

    previous = get_spmm_threads()
    try:
        set_spmm_threads(1)
        single_seconds, single_out = run("single")
        set_spmm_threads(threads, min_nnz=1)
        threaded_seconds, threaded_out = run("threaded")
    finally:
        set_spmm_threads(previous, min_nnz=200_000)

    if not np.array_equal(single_out, threaded_out):
        raise AssertionError(
            f"threaded spmm diverged from single-threaded at N={num_nodes} "
            f"d={graph_density}"
        )
    return {
        "num_nodes": num_nodes,
        "graph_density": graph_density,
        "threads": threads,
        "cpu_cores": os.cpu_count() or 1,
        "single_seconds": single_seconds,
        "threaded_seconds": threaded_seconds,
        "speedup": single_seconds / threaded_seconds,
        "bit_identical": True,
    }


def bench_augmented(num_nodes: int, graph_density: float, batch: int, steps: int,
                    channels: int, reps: int, seed: int) -> dict:
    """The URCL augmented-supports path: dense fallback vs the CSR delta path.

    Each timed step is one contrastive-branch unit of work: apply a spatial
    augmentation to the shared graph, build the perturbed graph's diffusion
    supports, and run the graph convolution forward + backward on the
    augmented view.  Both modes replay identical augmentation randomness,
    and the final outputs are checked for agreement.
    """
    rng = np.random.default_rng(seed)
    adjacency = make_adjacency(num_nodes, graph_density, rng)
    x_data = rng.normal(size=(batch, steps, num_nodes, channels))
    timings = {}
    outputs = {}
    for mode in ("dense", "auto"):
        graph_sparse.clear_support_cache()
        with graph_sparse.spatial_mode(mode):
            graph = Graph(adjacency, name=f"bench-aug-{mode}")
            conv = DiffusionGraphConv(channels, channels, adjacency=graph, rng=seed)
            augmentations = [
                DropEdge(sample_ratio=0.3, rng=seed),
                DropNodes(drop_ratio=0.1, rng=seed + 1),
                SubGraph(keep_ratio=0.7, rng=seed + 2),
            ]
            samples = []
            for rep in range(reps + 1):  # first iteration is warmup
                augmentation = augmentations[rep % len(augmentations)]
                conv.zero_grad()
                start = time.perf_counter()
                sample = augmentation(x_data, graph)
                x = Tensor(sample.observations, requires_grad=True)
                out = conv(x, adjacency=sample.graph)
                out.sum().backward()
                samples.append(time.perf_counter() - start)
                outputs[mode] = out.data
            timings[mode] = float(np.median(samples[1:]))
    max_abs_diff = float(np.max(np.abs(outputs["dense"] - outputs["auto"])))
    scale = float(np.max(np.abs(outputs["dense"]))) or 1.0
    if max_abs_diff > 1e-5 * scale:
        raise AssertionError(
            f"augmented dense/delta mismatch at N={num_nodes} d={graph_density}: "
            f"{max_abs_diff:.3e}"
        )
    stats = graph_sparse.support_cache_stats()
    return {
        "num_nodes": num_nodes,
        "graph_density": graph_density,
        "dense_seconds": timings["dense"],
        "delta_seconds": timings["auto"],
        "speedup": timings["dense"] / timings["auto"],
        "max_abs_diff": max_abs_diff,
        "delta_hits": stats["delta_hits"],
    }


def bench_support_cache(num_nodes: int, seed: int) -> dict:
    """Cost of supports_for on a repeated adjacency override: miss vs hit."""
    rng = np.random.default_rng(seed)
    adjacency = make_adjacency(num_nodes, 0.05, rng)
    conv = DiffusionGraphConv(4, 4, adjacency=adjacency, rng=seed)
    override = adjacency.copy()  # URCL passes network.adjacency.copy() per period

    graph_sparse.clear_support_cache()
    start = time.perf_counter()
    conv.supports_for(override)
    miss_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(10):
        conv.supports_for(override.copy())  # fresh array, same content
    hit_seconds = (time.perf_counter() - start) / 10

    stats = graph_sparse.support_cache_stats()
    return {
        "num_nodes": num_nodes,
        "miss_seconds": miss_seconds,
        "hit_seconds": hit_seconds,
        "speedup": miss_seconds / hit_seconds if hit_seconds > 0 else float("inf"),
        "cache": stats,
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench", choices=sorted(SWEEPS))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    node_counts, densities, batch, steps, channels, reps = SWEEPS[args.scale]
    record = {
        "benchmark": "spatial",
        "scale": args.scale,
        "seed": args.seed,
        "batch": batch,
        "time_steps": steps,
        "channels": channels,
        "configs": [],
    }
    for num_nodes in node_counts:
        for graph_density in densities:
            record["configs"].append(
                bench_config(num_nodes, graph_density, batch, steps, channels, reps, args.seed)
            )
    sparse_configs = [
        (n, d) for n in node_counts for d in densities
        if d <= SPARSE_SECTION_MAX_DENSITY
    ]
    record["fused"] = [
        bench_fused(n, d, batch, steps, channels, reps, args.seed)
        for n, d in sparse_configs
    ]
    record["threaded"] = [
        bench_threaded(n, d, batch, steps, channels, reps, args.seed)
        for n, d in sparse_configs
    ]
    record["augmented"] = [
        bench_augmented(n, d, batch, steps, channels, reps, args.seed)
        for n, d in sparse_configs
    ]
    record["support_cache"] = bench_support_cache(max(node_counts), args.seed)

    headers = ["N", "density", "modes", "dense s", "auto s", "speedup", "max|diff|"]
    rows = [
        [
            c["num_nodes"],
            c["graph_density"],
            "/".join(c["support_modes"]),
            c["dense_seconds"],
            c["auto_seconds"],
            c["speedup"],
            c["max_abs_diff"],
        ]
        for c in record["configs"]
    ]
    print(format_table(headers, rows, title=f"Spatial mixing — dense vs auto ({args.scale})"))

    fused_rows = [
        [c["num_nodes"], c["graph_density"], c["loop_seconds"], c["fused_seconds"],
         c["speedup"], c["max_abs_diff"]]
        for c in record["fused"]
    ]
    print(format_table(
        ["N", "density", "loop s", "fused s", "speedup", "max|diff|"],
        fused_rows, title="Fused multi-support spmm — per-support loop vs one traversal",
    ))
    threaded_rows = [
        [c["num_nodes"], c["graph_density"], c["threads"], c["single_seconds"],
         c["threaded_seconds"], c["speedup"]]
        for c in record["threaded"]
    ]
    print(format_table(
        ["N", "density", "threads", "1-thread s", "threaded s", "speedup"],
        threaded_rows,
        title="Chunked multithreaded spmm — bit-identical to single-threaded",
    ))
    augmented_rows = [
        [c["num_nodes"], c["graph_density"], c["dense_seconds"], c["delta_seconds"],
         c["speedup"], c["max_abs_diff"]]
        for c in record["augmented"]
    ]
    print(format_table(
        ["N", "density", "dense s", "delta s", "speedup", "max|diff|"],
        augmented_rows, title="Augmented-supports path — dense fallback vs CSR delta",
    ))
    cache = record["support_cache"]
    print(
        f"support cache (N={cache['num_nodes']}): miss {cache['miss_seconds']*1e3:.1f} ms, "
        f"hit {cache['hit_seconds']*1e3:.2f} ms ({cache['speedup']:.0f}x)"
    )

    sparse_wins = [
        c["speedup"] for c in record["configs"]
        if c["num_nodes"] >= 500 and "csr" in c["support_modes"]
    ]
    if sparse_wins:
        record["best_sparse_speedup"] = max(sparse_wins)
        print(f"best sparse speedup at N>=500: {record['best_sparse_speedup']:.2f}x")
    fallbacks = [
        c["speedup"] for c in record["configs"] if "csr" not in c["support_modes"]
    ]
    if fallbacks:
        record["worst_fallback_speedup"] = min(fallbacks)
        print(f"worst dense-fallback ratio: {record['worst_fallback_speedup']:.2f}x")
    fused_wins = [c["speedup"] for c in record["fused"] if c["num_nodes"] >= 500]
    if fused_wins:
        record["best_fused_speedup"] = max(fused_wins)
        print(f"best fused-spmm speedup at N>=500: {record['best_fused_speedup']:.2f}x")
    augmented_wins = [
        c["speedup"] for c in record["augmented"] if c["num_nodes"] >= 500
    ]
    if augmented_wins:
        record["best_augmented_speedup"] = max(augmented_wins)
        record["worst_augmented_speedup"] = min(augmented_wins)
        print(
            f"augmented delta path at N>=500: best {record['best_augmented_speedup']:.2f}x, "
            f"worst {record['worst_augmented_speedup']:.2f}x vs dense fallback"
        )

    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    save_json(RESULTS_PATH, history)
    print(f"recorded to {RESULTS_PATH}")
    return record


if __name__ == "__main__":
    main()
