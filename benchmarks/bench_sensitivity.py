"""Extra ablation benches (DESIGN.md §5): replay-buffer capacity and STMixup alpha.

These sweeps cover design choices the paper fixes without justification
(buffer size 256, a single mixup alpha); the bench reports how sensitive
URCL's accuracy is to them.
"""

import numpy as np

from repro.experiments import run_buffer_capacity_sweep, run_mixup_alpha_sweep

from conftest import record_result


def test_buffer_capacity_sensitivity(benchmark, scale, seed):
    result = benchmark.pedantic(
        run_buffer_capacity_sweep,
        kwargs={"scale": scale, "seed": seed, "capacities": (32, 128)},
        rounds=1,
        iterations=1,
    )
    record_result("sensitivity_buffer_capacity", result)
    assert all(np.isfinite(entry["mae"]) for entry in result["results"].values())


def test_mixup_alpha_sensitivity(benchmark, scale, seed):
    result = benchmark.pedantic(
        run_mixup_alpha_sweep,
        kwargs={"scale": scale, "seed": seed, "alphas": (0.2, 1.0)},
        rounds=1,
        iterations=1,
    )
    record_result("sensitivity_mixup_alpha", result)
    assert all(np.isfinite(entry["mae"]) for entry in result["results"].values())
