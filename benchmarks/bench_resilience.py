"""Resilience benchmark: seeded fault storm vs clean serving, with recovery.

Drives the :class:`~repro.serve.ServingEngine` through
:func:`~repro.serve.loadgen.run_fault_storm`: a clean closed-loop baseline,
the same loop under the default seeded :meth:`FaultPlan.storm` (worker
crashes and stalls, NaN window corruption, node dropout, a failed
checkpoint load), then disarm and measure time-to-recover plus the
post-recovery curve.

Correctness is asserted inline before any timing:

* **Retry bit-parity** — under a crash/stall-only plan (no data
  corruption) with retries enabled, every request must resolve to the
  *bit-identical* prediction a direct ``Forecaster.predict`` gives:
  redispatching a batch after a worker crash is only safe because predict
  is side-effect-free, and this check pins that invariant.
* **Zero lost futures** — across clean, storm and recovery phases every
  accepted request's future must resolve; a future that never resolves is
  the one failure mode the engine promises cannot happen.
* **Recovery** — after the storm is disarmed the engine must return to
  sustained healthy service, with post-recovery throughput within 2x of
  the clean baseline.

Everything records to ``benchmarks/results/BENCH_resilience.json`` (clean
vs storm vs post-recovery throughput/latency/error curves, fault counts,
time-to-recover, resilience metrics) so the fault-tolerance trajectory is
tracked per PR.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_resilience.py            # full
    PYTHONPATH=src python benchmarks/bench_resilience.py --scale smoke
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.experiments.reporting import format_table
from repro.serve import FaultPlan, ServingEngine, build_synthetic_tenants
from repro.serve.loadgen import resilience_config, run_fault_storm
from repro.utils.serialization import save_json

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_resilience.json"

# (tenants, concurrency, total requests, nodes, request windows)
SWEEPS = {
    "smoke": (2, 8, 96, 12, 24),
    "bench": (2, 16, 256, 16, 32),
}


def assert_retry_parity(pool, windows: np.ndarray, seed: int) -> list[dict]:
    """Crashed-and-retried batches must match direct predict bit-for-bit.

    The plan injects only worker crashes and stalls — faults that destroy
    *where* a batch runs, never *what* it computes — so with retries on,
    served output equals the fault-free output exactly.  ``fallback`` is
    off so a silent degraded answer cannot masquerade as parity.
    """
    checks = []
    config = resilience_config(
        max_retries=8, wedge_timeout_s=5.0, fallback="none",
    )
    for tenant in pool.resident:
        direct = pool.forecaster(tenant).predict(windows)
        plan = FaultPlan(
            seed=seed, worker_crash_rate=0.35, worker_stall_rate=0.15,
            stall_ms=10.0, worker_fault_limit=6,
        )
        engine = ServingEngine(pool, config, faults=plan)
        try:
            futures = [engine.submit(window, tenant=tenant) for window in windows]
            served = np.stack([future.result(timeout=120) for future in futures])
            faults = engine.injector.stats()
            restarts = engine.metrics.worker_restarts
            retried = engine.metrics.retried
        finally:
            engine.close()
        if not np.array_equal(served, direct):
            raise AssertionError(
                f"retried serving diverged from direct predict (tenant={tenant})"
            )
        checks.append({
            "tenant": tenant,
            "bit_identical": True,
            "injected_crashes": faults["crashes"],
            "injected_stalls": faults["stalls"],
            "worker_restarts": restarts,
            "requests_retried": retried,
        })
    return checks


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench", choices=sorted(SWEEPS))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    num_tenants, concurrency, total_requests, num_nodes, num_windows = (
        SWEEPS[args.scale]
    )
    pool, windows, _ = build_synthetic_tenants(
        num_tenants=num_tenants, num_nodes=num_nodes, seed=args.seed,
        request_windows=num_windows,
    )
    tenants = pool.resident

    record = {
        "benchmark": "resilience",
        "scale": args.scale,
        "seed": args.seed,
        "num_nodes": num_nodes,
        "concurrency": concurrency,
        "total_requests": total_requests,
        "retry_parity": assert_retry_parity(pool, windows[:8], args.seed),
    }
    record.update(
        run_fault_storm(
            pool, windows, tenants=tenants,
            plan=FaultPlan.storm(seed=args.seed),
            concurrency=concurrency, total_requests=total_requests,
        )
    )

    rows = []
    for phase in ("clean", "storm", "post_recovery"):
        result = record[phase]
        issued = result["completed"] + result["failed"] + result["lost"]
        rows.append([
            phase,
            result["throughput_rps"],
            result["latency_ms"]["p50"],
            result["latency_ms"]["p99"],
            result["failed"],
            f"{result['failed'] / issued:.1%}" if issued else "n/a",
            result["lost"],
        ])
    print(format_table(
        ["phase", "req/s", "p50 ms", "p99 ms", "failed", "error rate", "lost"],
        rows,
        title=(
            f"Resilience — closed loop at concurrency {concurrency} "
            f"under FaultPlan.storm ({args.scale})"
        ),
    ))
    faults = record["faults"]
    print(
        f"injected: {faults.get('crashes', 0)} crashes, "
        f"{faults.get('stalls', 0)} stalls, "
        f"{faults.get('corrupted_windows', 0)} corrupted windows, "
        f"{faults.get('dropped_node_windows', 0)} node dropouts, "
        f"{faults.get('checkpoint_failures', 0)} checkpoint failures"
    )
    metrics = record["metrics"]
    print(
        f"recovery: {metrics['worker_restarts']} worker restarts, "
        f"{metrics['retried']} requests retried, "
        f"{metrics['fallbacks']} fallback answers, "
        f"{metrics['imputed_windows']} windows imputed; "
        f"time-to-recover {record['recovery']['time_to_recover_seconds'] * 1e3:.0f} ms"
    )

    if record["lost_requests"] != 0:
        raise AssertionError(
            f"{record['lost_requests']} futures never resolved — the engine "
            "dropped accepted requests"
        )
    if not record["recovery"]["recovered"]:
        raise AssertionError(
            "engine did not return to healthy service after the storm was disarmed"
        )
    ratio = record["recovered_throughput_ratio"]
    if not ratio >= 0.5:
        raise AssertionError(
            f"post-recovery throughput is {ratio:.2f}x the clean baseline "
            "(must be within 2x, i.e. ratio >= 0.5)"
        )
    print(
        f"post-recovery throughput: {ratio:.2f}x clean baseline; "
        f"0 lost futures across all phases"
    )

    history = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    save_json(RESULTS_PATH, history)
    print(f"recorded to {RESULTS_PATH}")
    return record


if __name__ == "__main__":
    main()
