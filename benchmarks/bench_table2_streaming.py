"""Table II — OneFitAll vs FinetuneST vs URCL on streaming data.

Paper shape to reproduce: URCL is the most accurate and the most *stable*
method across the base set and the incremental sets, while the static
OneFitAll model degrades as concept drift accumulates.
"""

import numpy as np

from repro.experiments import run_table2

from conftest import record_result


def _mean_mae(per_set: dict) -> float:
    return float(np.mean([entry["mae"] for entry in per_set.values()]))


def test_table2_training_on_streaming_data(benchmark, scale, seed):
    result = benchmark.pedantic(
        run_table2, kwargs={"scale": scale, "seed": seed}, rounds=1, iterations=1
    )
    record_result("table2_streaming_strategies", result)

    for dataset, methods in result["results"].items():
        assert set(methods) == {"OneFitAll", "FinetuneST", "URCL"}
        for per_set in methods.values():
            assert all(np.isfinite(entry["mae"]) for entry in per_set.values())
        # Shape check: URCL beats the static OneFitAll model on average.
        assert _mean_mae(methods["URCL"]) <= _mean_mae(methods["OneFitAll"]) * 1.25, dataset
