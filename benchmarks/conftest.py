"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper via the
experiment runners in :mod:`repro.experiments`.  The fidelity/runtime
trade-off is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(``smoke`` | ``bench`` | ``paper``; default ``bench``) so the same harness
can be used for a quick check or an overnight full-scale run.

Each benchmark prints the regenerated rows/series and also writes them to
``benchmarks/results/<experiment>.txt`` so they survive output capturing.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    """Scale preset used by the benchmark harness."""
    return os.environ.get("REPRO_BENCH_SCALE", "bench")


def bench_seed() -> int:
    """Seed used by the benchmark harness."""
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


def record_result(name: str, result: dict) -> None:
    """Print the regenerated table/figure and persist it to disk."""
    formatted = result.get("formatted", "")
    print(f"\n===== {name} (scale={result.get('scale', bench_scale())}) =====")
    print(formatted)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with open(RESULTS_DIR / f"{name}.txt", "w", encoding="utf-8") as handle:
        handle.write(formatted + "\n")


@pytest.fixture
def scale() -> str:
    return bench_scale()


@pytest.fixture
def seed() -> int:
    return bench_seed()
