"""Figure 8 — training-loss convergence of URCL on METR-LA and PEMS08.

Paper shape to reproduce: the loss drops quickly on the base set and the
incremental sets converge faster than (or at least no slower than) the base
set because the replayed knowledge transfers forward.
"""

import numpy as np

from repro.experiments import run_fig8

from conftest import record_result


def test_fig8_training_convergence(benchmark, scale, seed):
    result = benchmark.pedantic(
        run_fig8, kwargs={"scale": scale, "seed": seed}, rounds=1, iterations=1
    )
    record_result("fig8_convergence", result)

    for dataset, curve in result["loss_curves"].items():
        curve = np.asarray(curve)
        assert curve.size >= 5
        assert np.isfinite(curve).all()
        boundaries = result["set_boundaries"][dataset]
        base_epochs = boundaries[0]
        # Shape check: training reduces the loss within the base set.
        assert curve[base_epochs - 1] <= curve[0] * 1.05, dataset
