"""Figure 6 — ablation study: URCL vs w/o_GCL, w/o_STU, w/o_RMIR, w/o_STA.

Paper shape to reproduce: the full URCL configuration is at least as good
as its ablated variants on average (every component contributes).
"""

import numpy as np

from repro.experiments import run_fig6

from conftest import record_result


def _mean_mae(per_set: dict) -> float:
    return float(np.mean([entry["mae"] for entry in per_set.values()]))


def test_fig6_component_ablation(benchmark, scale, seed):
    result = benchmark.pedantic(
        run_fig6, kwargs={"scale": scale, "seed": seed}, rounds=1, iterations=1
    )
    record_result("fig6_ablation", result)

    for dataset, variants in result["results"].items():
        assert set(variants) == {"w/o_GCL", "w/o_STU", "w/o_RMIR", "w/o_STA", "URCL"}
        means = {name: _mean_mae(per_set) for name, per_set in variants.items()}
        assert all(np.isfinite(value) for value in means.values())
        # Shape check: the full framework stays competitive with every ablated
        # variant (at paper scale it strictly dominates; see EXPERIMENTS.md).
        best = min(means.values())
        assert means["URCL"] <= best * 1.75, (dataset, means)
