"""Figure 7 — training time per epoch and inference time per observation (PEMS04).

Paper shape to reproduce: URCL trains faster per epoch than the recurrent
DCRNN baseline while its inference latency stays in the same range as the
other convolutional/graph baselines.
"""

import numpy as np

from repro.experiments import run_fig7

from conftest import record_result


def test_fig7_training_and_inference_efficiency(benchmark, scale, seed):
    result = benchmark.pedantic(
        run_fig7, kwargs={"scale": scale, "seed": seed}, rounds=1, iterations=1
    )
    record_result("fig7_efficiency", result)

    timings = result["results"]
    assert "URCL" in timings and "DCRNN" in timings
    for method, values in timings.items():
        assert values["train_seconds_per_epoch_base"] > 0, method
        assert values["inference_seconds_base"] > 0, method
    # Shape check: URCL's inference latency is far below the recurrent DCRNN's.
    assert (
        timings["URCL"]["inference_seconds_incremental"]
        <= timings["DCRNN"]["inference_seconds_incremental"] * 1.5
    )
