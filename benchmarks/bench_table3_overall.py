"""Table III — overall accuracy of URCL and the six baselines on all datasets.

Paper shape to reproduce: URCL is best (or tied) in most dataset/period
cells; ARIMA, which ignores spatial correlations, is the weakest family.
"""

import numpy as np

from repro.experiments import run_table3

from conftest import record_result


def _mean_mae(per_set: dict) -> float:
    return float(np.mean([entry["mae"] for entry in per_set.values()]))


def test_table3_overall_accuracy(benchmark, scale, seed):
    result = benchmark.pedantic(
        run_table3, kwargs={"scale": scale, "seed": seed}, rounds=1, iterations=1
    )
    record_result("table3_overall_accuracy", result)

    for dataset, methods in result["results"].items():
        assert "URCL" in methods and "ARIMA" in methods
        assert set(methods) >= {"ARIMA", "DCRNN", "STGCN", "MTGNN", "AGCRN", "STGODE", "URCL"}
        for per_set in methods.values():
            assert set(per_set) == {"Bset", "I1", "I2", "I3", "I4"}
            assert all(np.isfinite(entry["mae"]) for entry in per_set.values())
            assert all(entry["rmse"] >= entry["mae"] - 1e-9 for entry in per_set.values())
        # Shape check: URCL stays within the range spanned by the baselines
        # (at full paper scale it leads; see EXPERIMENTS.md for the measured grid).
        baseline_means = [
            _mean_mae(per_set) for name, per_set in methods.items() if name != "URCL"
        ]
        assert _mean_mae(methods["URCL"]) <= max(baseline_means) * 1.1, dataset
